"""STMaker: the end-to-end partition-and-summarization facade.

``STMaker.train`` learns the historical knowledge (transfer network for
popular routes, historical feature map for regular moving behaviour) from a
training corpus of raw trajectories; ``STMaker.summarize`` then runs the
full pipeline of Fig. 3 on a single trajectory:

1. calibrate the raw trajectory into a symbolic trajectory;
2. extract routing and moving features per segment;
3. partition the symbolic trajectory (CRF potential + dynamic programming);
4. select the most irregular features per partition;
5. realize the summary text from the templates.

By default every stage degrades gracefully instead of failing: a stage
error triggers the stage's documented fallback and is recorded in the
summary's :class:`~repro.resilience.DegradationReport` (``strict=True``
restores raise-on-first-error).  ``STMaker.summarize_many`` adds per-item
error isolation, bounded retry, deadline budgets and a quarantine list on
top — see ``docs/ROBUSTNESS.md`` for the full degradation ladder — and,
with ``workers > 1``, delegates to the sharded worker pool in
:mod:`repro.serving` (element-wise identical results; ``docs/SERVING.md``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable

from repro.calibration import AnchorCalibrator, CalibrationConfig
from repro.core.config import SummarizerConfig
from repro.core.partition import optimal_k_partition, optimal_partition
from repro.core.selection import FeatureSelector, PartitionAssessment
from repro.core.similarity import segment_similarities
from repro.core.templates import partition_sentence, summary_text
from repro.core.types import PartitionSpan, PartitionSummary, TrajectorySummary
from repro.exceptions import (
    CalibrationError,
    ConfigError,
    PartitionError,
    ReproError,
    TransientError,
    WorkerCrashError,
)
from repro.features import (
    GRADE_OF_ROAD,
    ROAD_WIDTH,
    TRAFFIC_DIRECTION,
    FeatureKind,
    FeaturePipeline,
    FeatureRegistry,
    RoutingFeatures,
    SegmentFeatures,
    default_registry,
    normalized_vectors,
)
from repro.landmarks import LandmarkIndex
from repro.obs import (
    TraceContext,
    emit_event,
    events_enabled,
    metrics,
    span,
    stage_scope,
    stage_sink,
    start_trace,
    timed_span,
    use_trace,
    wall_clock_of,
)
from repro.resilience import (
    BatchProgress,
    BatchResult,
    Deadline,
    DegradationEvent,
    DegradationReport,
    ItemOutcome,
    LatencyBreakdown,
    QuarantineEntry,
    RetryPolicy,
)
from repro.roadnet import RoadGrade, RoadNetwork, TrafficDirection
from repro.routes import HistoricalFeatureMap, PopularRouteMiner, TransferNetwork
from repro.trajectory import (
    RawTrajectory,
    SanitizerConfig,
    SymbolicEntry,
    SymbolicTrajectory,
    sanitize_trajectory,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience import FaultInjector
    from repro.serving import (
        AdmissionController,
        AdmissionPolicy,
        CircuitBreaker,
        ShardRetryPolicy,
    )


class STMaker:
    """Summarizes raw trajectories into short descriptive texts."""

    def __init__(
        self,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        transfers: TransferNetwork,
        feature_map: HistoricalFeatureMap,
        config: SummarizerConfig | None = None,
        registry: FeatureRegistry | None = None,
        calibrator: AnchorCalibrator | None = None,
        pipeline: FeaturePipeline | None = None,
    ) -> None:
        self.network = network
        self.landmarks = landmarks
        self.transfers = transfers
        self.feature_map = feature_map
        self.config = config or SummarizerConfig()
        self.registry = registry or default_registry()
        self.calibrator = calibrator or AnchorCalibrator(landmarks)
        self.pipeline = pipeline or FeaturePipeline(network, landmarks, self.registry)
        self.popular_routes = PopularRouteMiner(
            transfers, min_support=self.config.popular_route_min_support
        )
        self.selector = FeatureSelector(
            self.registry, self.config, self.pipeline,
            self.popular_routes, feature_map, landmarks,
        )
        #: Chaos hook: when set, consulted at every stage boundary.  Use
        #: :meth:`repro.resilience.FaultInjector.installed` to scope it.
        self.fault_injector: "FaultInjector | None" = None

    # -- training -----------------------------------------------------------------

    @classmethod
    def train(
        cls,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        training: Iterable[RawTrajectory],
        config: SummarizerConfig | None = None,
        registry: FeatureRegistry | None = None,
        calibrator: AnchorCalibrator | None = None,
        calibration_config: CalibrationConfig | None = None,
    ) -> "STMaker":
        """Build an STMaker whose historical knowledge comes from *training*.

        Every training trajectory is calibrated; its landmark transitions
        feed the transfer network (popular routes) and its per-segment
        moving features feed the historical feature map.  Trajectories that
        fail calibration (too far from every landmark) are skipped — real
        GPS corpora always contain some junk.
        """
        registry = registry or default_registry()
        calibrator = calibrator or AnchorCalibrator(landmarks, calibration_config)

        def calibrated() -> Iterable[tuple[RawTrajectory, SymbolicTrajectory]]:
            for raw in training:
                try:
                    yield raw, calibrator.calibrate(raw)
                except CalibrationError:
                    continue  # junk trajectory: real corpora contain them too

        return cls.train_calibrated(
            network, landmarks, calibrated(),
            config=config, registry=registry, calibrator=calibrator,
        )

    @classmethod
    def train_calibrated(
        cls,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        training: Iterable[tuple[RawTrajectory, SymbolicTrajectory]],
        config: SummarizerConfig | None = None,
        registry: FeatureRegistry | None = None,
        calibrator: AnchorCalibrator | None = None,
    ) -> "STMaker":
        """Like :meth:`train`, for trajectories already calibrated upstream."""
        registry = registry or default_registry()
        pipeline = FeaturePipeline(network, landmarks, registry)
        transfers = TransferNetwork()
        feature_map = HistoricalFeatureMap()
        n_trajectories = 0
        n_segments = 0
        with span("train"):
            for raw, symbolic in training:
                transfers.add_trajectory(symbolic)
                n_trajectories += 1
                for segment in symbolic.segments():
                    values, _ = pipeline.extract_moving(raw, segment)
                    feature_map.add_observation(
                        segment.start_landmark, segment.end_landmark, values
                    )
                    n_segments += 1
        m = metrics()
        m.counter("train.trajectories").inc(n_trajectories)
        m.counter("train.segments").inc(n_segments)
        return cls(
            network, landmarks, transfers, feature_map,
            config=config, registry=registry, calibrator=calibrator,
            pipeline=pipeline,
        )

    def with_config(self, config: SummarizerConfig) -> "STMaker":
        """A sibling STMaker sharing all trained state but using *config*.

        Cheap: the historical structures are shared, not copied.  Used by
        the parameter-sweep experiments (Fig. 10).  An installed
        ``fault_injector`` carries over too (shared, not copied — fire
        counters stay global across siblings), so chaos armed on a model
        is not silently disarmed by a config sweep.
        """
        sibling = STMaker(
            self.network, self.landmarks, self.transfers, self.feature_map,
            config=config, registry=self.registry, calibrator=self.calibrator,
            pipeline=self.pipeline,
        )
        sibling.fault_injector = self.fault_injector
        return sibling

    # -- summarization ---------------------------------------------------------------

    def summarize(
        self,
        raw: RawTrajectory,
        k: int | None = None,
        *,
        strict: bool = False,
        sanitize: bool = False,
        sanitizer_config: SanitizerConfig | None = None,
    ) -> TrajectorySummary:
        """Summarize one raw trajectory.

        With ``k=None`` the CRF-optimal partition is used (Sec. IV-C);
        otherwise the trajectory is split into exactly ``k`` partitions
        (Sec. IV-D).  A requested ``k`` larger than the number of segments
        is clamped — the finest possible granularity is one partition per
        segment.

        By default each stage failure triggers that stage's fallback and is
        recorded in ``summary.degradation``; :class:`TransientError` s
        propagate so callers can retry.  ``strict=True`` disables every
        fallback and raises on the first error.  ``sanitize=True`` runs
        :func:`repro.trajectory.sanitize_trajectory` before calibration.
        """
        with timed_span(
            "summarize", trajectory_id=raw.trajectory_id, k=k
        ) as timer, stage_scope("summarize", raw.trajectory_id):
            report = DegradationReport()
            if sanitize:
                raw, cleaned = sanitize_trajectory(raw, sanitizer_config)
                if not cleaned.clean:
                    report.add(DegradationEvent(
                        "sanitize", "cleaned_input",
                        f"repaired input: {cleaned!r}",
                    ))
                    emit_event(
                        "sanitization", "sanitize", raw.trajectory_id,
                        dropped=cleaned.dropped_total, reordered=cleaned.reordered,
                    )
            if strict:
                with stage_scope("calibrate", raw.trajectory_id):
                    self._inject("calibrate", raw.trajectory_id)
                    symbolic = self.calibrator.calibrate(raw)
                summary = self.summarize_calibrated(raw, symbolic, k=k)
            else:
                summary = self._summarize_graceful(raw, k, report)
        m = metrics()
        m.counter("summarize.calls").inc()
        m.histogram("summarize.latency_ms").observe(timer.ms)
        m.histogram(
            "summarize.partitions", buckets=(1, 2, 3, 5, 8, 13, 21)
        ).observe(summary.partition_count)
        if summary.degradation.degraded:
            m.counter("resilience.degraded_summaries").inc()
        return summary

    def summarize_calibrated(
        self,
        raw: RawTrajectory,
        symbolic: SymbolicTrajectory,
        k: int | None = None,
    ) -> TrajectorySummary:
        """Summarize a trajectory whose calibration is already available.

        This is the strict (raise-on-error) pipeline core; the graceful
        path wraps the same stages with their fallbacks.
        """
        with stage_scope("extract", raw.trajectory_id):
            self._inject("extract", raw.trajectory_id)
            segment_features = self.pipeline.extract(raw, symbolic)
        spans = self.partition(symbolic, segment_features, k=k)
        partitions = []
        for i, part_span in enumerate(spans):
            partitions.append(
                self._summarize_partition(symbolic, segment_features, part_span, i == 0)
            )
        return TrajectorySummary(
            raw.trajectory_id, summary_text(partitions), partitions
        )

    def summarize_many(
        self,
        trajectories: Iterable[RawTrajectory],
        k: int | None = None,
        *,
        sanitize: bool = True,
        sanitizer_config: SanitizerConfig | None = None,
        strict: bool = False,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
        sleeper: Callable[[float], None] = time.sleep,
        progress: Callable[[BatchProgress], None] | None = None,
        workers: int = 1,
        shard_size: int | None = None,
        shard_mode: str = "balanced",
        executor: str = "thread",
        artifact: "str | None" = None,
        shard_retry: "ShardRetryPolicy | None" = None,
        breaker: "CircuitBreaker | bool | None" = None,
        admission: "AdmissionPolicy | AdmissionController | None" = None,
        tenant: str | None = None,
        priority: int = 0,
    ) -> BatchResult:
        """Summarize a batch with per-item error isolation.

        Each item is sanitized (on by default here — batches are the
        serving path), summarized, and retried with deterministic backoff
        when the failure is a :class:`TransientError`.  Items that still
        fail — including degradation failures and items not started before
        the ``deadline_s`` budget ran out — are quarantined, never raised,
        so one malformed trajectory cannot take down the batch.  With
        ``strict=True`` the first error raises instead (and no fallbacks
        run inside the items either).

        With ``workers > 1`` (or an explicit ``shard_size``) the batch is
        split into shards and served by the :mod:`repro.serving` worker
        pool: element-wise identical results in input order, but each
        shard gets its own full ``deadline_s`` budget and runs
        concurrently.  ``shard_mode`` is one of
        :data:`repro.serving.SHARD_MODES` and ``executor`` one of
        :data:`repro.serving.EXECUTORS`: ``"thread"`` (default; shares
        this model's memory, best for latency-bound work) or
        ``"process"`` (true multi-core for the pure-Python CPU-bound
        pipeline; workers rebuild the model from a city-model artifact —
        pass ``artifact=`` a path saved with
        :func:`repro.artifact.save_artifact` to reuse a published file,
        or leave it ``None`` to auto-publish this model to a session
        temp artifact).  The default ``workers=1`` with no
        ``shard_size`` is the serial loop below, unchanged.

        A ``progress`` callback receives a :class:`BatchProgress` snapshot
        after every item; the live rate and ETA are also mirrored into the
        ``resilience.batch.items_per_s`` / ``.eta_s`` gauges and onto the
        event stream.

        Failure containment (``docs/ROBUSTNESS.md``): *shard_retry* bounds
        how the process executor retries/bisects shards lost to worker
        crashes, *breaker* (``True`` or a
        :class:`repro.serving.CircuitBreaker`) trips to a degraded
        in-parent path under crash storms, and *admission* bounds the
        intake — over budget, it either raises
        :class:`~repro.exceptions.OverloadError` (``shed="reject"``) or
        serves the batch at a cheaper ``k`` (``shed="degrade"``), with
        *tenant*/*priority* consulted by per-tenant budgets and bypass.
        """
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        items = list(trajectories)
        if workers > 1 or shard_size is not None:
            from repro.serving import run_sharded

            return run_sharded(
                self, items, k,
                sanitize=sanitize, sanitizer_config=sanitizer_config,
                strict=strict, retry=retry, deadline_s=deadline_s,
                sleeper=sleeper, progress=progress,
                workers=workers, shard_size=shard_size, shard_mode=shard_mode,
                executor=executor, artifact=artifact,
                shard_retry=shard_retry, breaker=breaker,
                admission=admission, tenant=tenant, priority=priority,
            )
        ticket = None
        admission_wait_s = 0.0
        if admission is not None:
            # May raise OverloadError (shed="reject") — deliberately before
            # any work starts, so a shed batch costs nothing.
            admit_started = time.perf_counter()
            ticket = admission.admit(len(items), tenant=tenant, priority=priority)
            admission_wait_s = time.perf_counter() - admit_started
            if ticket.decision.k_override is not None:
                k = ticket.decision.k_override
        # Every item gets request identity from the moment the batch is
        # admitted; queue wait is measured against this anchor.
        batch_anchor_unix = time.time()
        retry = retry or RetryPolicy()
        deadline = Deadline(deadline_s)
        result = BatchResult()
        m = metrics()
        m.counter("resilience.batch.calls").inc()
        emit_event("batch_start", items=len(items), k=k)
        started = time.perf_counter()
        retries_seen = 0

        def note_progress(done: int) -> None:
            elapsed = time.perf_counter() - started
            rate = done / elapsed if elapsed > 0.0 else 0.0
            eta = (len(items) - done) / rate if rate > 0.0 else None
            m.gauge("resilience.batch.items_per_s").set(rate)
            if eta is not None:
                m.gauge("resilience.batch.eta_s").set(eta)
            snapshot = BatchProgress(
                done, len(items), result.ok_count, result.quarantined_count,
                retries_seen, elapsed, rate, eta,
            )
            emit_event("progress", **snapshot.to_dict())
            if progress is not None:
                progress(snapshot)

        try:
            with span("summarize_many", items=len(items), k=k) as sp:
                for index, raw in enumerate(items):
                    outcome = self._summarize_item(
                        index, raw, k=k,
                        sanitize=sanitize, sanitizer_config=sanitizer_config,
                        strict=strict, retry=retry, deadline=deadline,
                        sleeper=sleeper,
                        trace=start_trace(anchor_unix_s=batch_anchor_unix),
                        admission_wait_s=admission_wait_s,
                    )
                    retries_seen += outcome.retries
                    result.sanitization.append(outcome.sanitization)
                    result.latencies.append(outcome.latency)
                    if outcome.summary is not None:
                        result.summaries.append(outcome.summary)
                    if outcome.quarantine is not None:
                        result.quarantined.append(outcome.quarantine)
                    note_progress(index + 1)
                sp.set_tag("ok", result.ok_count)
                sp.set_tag("quarantined", result.quarantined_count)
        finally:
            if ticket is not None:
                ticket.release()
        emit_event(
            "batch_end", ok=result.ok_count,
            quarantined=result.quarantined_count,
            duration_ms=(time.perf_counter() - started) * 1000.0,
        )
        return result

    def _summarize_item(
        self,
        index: int,
        raw: RawTrajectory,
        *,
        k: int | None,
        sanitize: bool,
        sanitizer_config: SanitizerConfig | None,
        strict: bool,
        retry: RetryPolicy,
        deadline: Deadline,
        sleeper: Callable[[float], None],
        shard_id: int | None = None,
        trace: TraceContext | None = None,
        admission_wait_s: float = 0.0,
    ) -> ItemOutcome:
        """One batch item end to end: sanitize, summarize, retry, quarantine.

        The single code path shared by the serial loop above and the
        sharded pool in :mod:`repro.serving` — what makes ``workers=N``
        element-wise identical to ``workers=1`` by construction.  Raises
        only in ``strict`` mode; otherwise every failure becomes the
        outcome's quarantine entry.  *shard_id* is pure provenance for
        that entry (``None`` on the serial path).

        *trace* is the item's request identity: it is activated around the
        whole item, so every span recorded inside — in whichever process —
        carries its ``trace_id``, rooted at the ``item`` span opened here.
        A :class:`~repro.resilience.LatencyBreakdown` is always recorded
        (queue wait against ``trace.anchor_unix_s``, per-attempt exec
        time, backoff, per-stage splits) and attached to the outcome.
        """
        m = metrics()
        m.counter("resilience.batch.items").inc()
        item_started = time.perf_counter()
        breakdown = LatencyBreakdown(
            trace_id=trace.trace_id if trace is not None else None,
            admission_wait_s=admission_wait_s,
        )
        if trace is not None and trace.anchor_unix_s > 0.0:
            breakdown.queue_wait_s = max(
                0.0, wall_clock_of(item_started) - trace.anchor_unix_s
            )
        if deadline.expired:
            m.counter("resilience.batch.quarantined").inc()
            message = (
                f"batch deadline budget of {deadline.budget_s:g}s exhausted "
                f"before item {index}"
            )
            emit_event(
                "quarantine", trajectory_id=raw.trajectory_id,
                index=index, error_type="DeadlineExceeded", attempts=0,
                error=message,
            )
            self._note_item_end(m, raw.trajectory_id, index, False, breakdown)
            return ItemOutcome(index, None, QuarantineEntry(
                index, raw.trajectory_id, "DeadlineExceeded", message, 0,
                shard_id=shard_id, latency=breakdown,
            ), None, latency=breakdown)
        attempts = 0
        retries = 0
        sanitization = None
        with use_trace(trace), span(
            "item", index=index, trajectory_id=raw.trajectory_id,
            shard_id=shard_id,
        ) as item_span:
            try:
                with stage_sink(breakdown.note_stage):
                    if sanitize:
                        raw, sanitization = sanitize_trajectory(raw, sanitizer_config)
                        if not sanitization.clean:
                            emit_event(
                                "sanitization", "sanitize", raw.trajectory_id,
                                dropped=sanitization.dropped_total,
                                reordered=sanitization.reordered,
                            )
                    while True:
                        attempts += 1
                        breakdown.attempts = attempts
                        attempt_started = time.perf_counter()
                        try:
                            try:
                                with span("attempt", attempt=attempts):
                                    summary = self.summarize(raw, k=k, strict=strict)
                            finally:
                                breakdown.exec_s += (
                                    time.perf_counter() - attempt_started
                                )
                            breakdown.total_s = time.perf_counter() - item_started
                            m.counter("resilience.batch.ok").inc()
                            self._note_item_end(
                                m, raw.trajectory_id, index, True, breakdown
                            )
                            return ItemOutcome(
                                index, summary, None, sanitization, retries,
                                latency=breakdown,
                            )
                        except TransientError as exc:
                            if attempts > retry.max_retries:
                                raise
                            delay = retry.delay_s(attempts)
                            if delay >= deadline.remaining_s():
                                raise  # backing off would blow the budget
                            m.counter("resilience.batch.retries").inc()
                            retries += 1
                            emit_event(
                                "retry", trajectory_id=raw.trajectory_id,
                                attempt=attempts, delay_s=delay,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            if delay > 0.0:
                                sleeper(delay)
                                breakdown.backoff_s += delay
            except ReproError as exc:
                if strict:
                    raise
                item_span.set_tag("quarantined", True)
                breakdown.total_s = time.perf_counter() - item_started
                m.counter("resilience.batch.quarantined").inc()
                emit_event(
                    "quarantine", trajectory_id=raw.trajectory_id,
                    index=index, error_type=type(exc).__name__,
                    attempts=attempts, error=str(exc),
                )
                self._note_item_end(m, raw.trajectory_id, index, False, breakdown)
                return ItemOutcome(index, None, QuarantineEntry(
                    index, raw.trajectory_id, type(exc).__name__,
                    str(exc), attempts,
                    total_duration_s=time.perf_counter() - item_started,
                    shard_id=shard_id, latency=breakdown,
                ), sanitization, retries, latency=breakdown)

    @staticmethod
    def _note_item_end(
        m, trajectory_id: str, index: int, ok: bool, breakdown: LatencyBreakdown
    ) -> None:
        """Publish one settled item: latency histogram + ``item_end`` event.

        The event carries the full breakdown (it feeds the SLO engine and
        ``stmaker obs analyze``); the payload is only built when the event
        stream is live, keeping the always-on path to one histogram call.
        """
        m.histogram("resilience.item.latency_ms").observe(
            breakdown.total_s * 1000.0
        )
        if events_enabled():
            emit_event(
                "item_end", trajectory_id=trajectory_id,
                index=index, ok=ok,
                duration_ms=breakdown.total_s * 1000.0,
                attempts=breakdown.attempts,
                trace_id=breakdown.trace_id,
                breakdown=breakdown.to_dict(),
            )

    def partition(
        self,
        symbolic: SymbolicTrajectory,
        segment_features: list[SegmentFeatures],
        k: int | None = None,
    ) -> list[PartitionSpan]:
        """The partition step alone (useful for analysis and tests)."""
        with stage_scope("partition", symbolic.trajectory_id):
            return self._partition_inner(symbolic, segment_features, k)

    def _partition_inner(
        self,
        symbolic: SymbolicTrajectory,
        segment_features: list[SegmentFeatures],
        k: int | None,
    ) -> list[PartitionSpan]:
        self._inject("partition", symbolic.trajectory_id)
        n_segments = len(segment_features)
        if n_segments != symbolic.segment_count:
            raise PartitionError(
                f"{n_segments} feature rows for {symbolic.segment_count} segments"
            )
        with span("partition", segments=n_segments, k=k):
            if n_segments == 1:
                return [PartitionSpan(0, 0)]
            vectors = normalized_vectors(segment_features, self.registry)
            weights = [self.config.weight(key) for key in self.registry.keys()]
            similarities = segment_similarities(vectors.tolist(), weights)
            boundary_scores = [
                self.config.ca
                * self.landmarks.get(symbolic[i + 1].landmark).significance
                for i in range(n_segments - 1)
            ]
            if k is None:
                return optimal_partition(similarities, boundary_scores)
            k = max(1, min(k, n_segments))
            return optimal_k_partition(similarities, boundary_scores, k)

    # -- graceful degradation --------------------------------------------------------

    def _summarize_graceful(
        self, raw: RawTrajectory, k: int | None, report: DegradationReport
    ) -> TrajectorySummary:
        """The five stages with their fallbacks (see docs/ROBUSTNESS.md).

        :class:`TransientError` s are re-raised untouched at every stage —
        they are expected to succeed on retry, so degrading on them would
        permanently lose summary quality; ``summarize_many`` retries them.
        :class:`WorkerCrashError` s propagate too: a crash is not a stage
        failure to paper over but an item-fatal event, and letting it
        reach the quarantine path is what keeps the serial loop's verdict
        for a poison item identical to the supervised process pool's.
        """
        try:
            with stage_scope("calibrate", raw.trajectory_id):
                self._inject("calibrate", raw.trajectory_id)
                symbolic = self.calibrator.calibrate(raw)
        except (TransientError, WorkerCrashError):
            raise
        except ReproError as exc:
            symbolic = self._geometric_calibrate(raw)
            self._record(report, "calibrate", "geometric_anchors", exc)

        include_routing = True
        try:
            with stage_scope("extract", raw.trajectory_id):
                self._inject("extract", raw.trajectory_id)
                segment_features = self.pipeline.extract(raw, symbolic)
        except (TransientError, WorkerCrashError):
            raise
        except ReproError as exc:
            segment_features = self._extract_moving_only(raw, symbolic)
            include_routing = False
            self._record(report, "extract", "moving_features_only", exc)

        try:
            spans = self.partition(symbolic, segment_features, k=k)
        except (TransientError, WorkerCrashError):
            raise
        except ReproError as exc:
            spans = [PartitionSpan(0, symbolic.segment_count - 1)]
            self._record(report, "partition", "single_partition", exc)

        partitions = []
        for i, part_span in enumerate(spans):
            partitions.append(self._summarize_partition_graceful(
                symbolic, segment_features, part_span, i == 0,
                include_routing, report,
            ))
        return TrajectorySummary(
            raw.trajectory_id, summary_text(partitions), partitions, report
        )

    def _summarize_partition_graceful(
        self,
        symbolic: SymbolicTrajectory,
        segment_features: list[SegmentFeatures],
        part_span: PartitionSpan,
        is_first: bool,
        include_routing: bool,
        report: DegradationReport,
    ) -> PartitionSummary:
        try:
            with stage_scope("select", symbolic.trajectory_id):
                self._inject("select", symbolic.trajectory_id)
                assessment = self.selector.assess(
                    symbolic, segment_features, part_span,
                    include_routing=include_routing,
                )
        except (TransientError, WorkerCrashError):
            raise
        except ReproError as exc:
            assessment = PartitionAssessment(part_span, [], [])
            self._record(report, "select", "no_features", exc)

        source = self._safe_landmark_name(
            symbolic[part_span.start_landmark_index].landmark, "origin of the trip"
        )
        destination = self._safe_landmark_name(
            symbolic[part_span.end_landmark_index].landmark, "destination"
        )
        try:
            with stage_scope("realize", symbolic.trajectory_id):
                self._inject("realize", symbolic.trajectory_id)
                with span("realize", selected=len(assessment.selected)):
                    sentence = partition_sentence(
                        source, destination, assessment.selected, self.registry, is_first
                    )
        except (TransientError, WorkerCrashError):
            raise
        except ReproError as exc:
            opener = "The car started from" if is_first else "Then it moved from"
            sentence = f"{opener} the {source} to the {destination}."
            self._record(report, "realize", "generic_sentence", exc)
        metrics().counter("realize.sentences").inc()
        return PartitionSummary(
            part_span, source, destination,
            assessment.assessments, assessment.selected, sentence,
        )

    def _geometric_calibrate(
        self, raw: RawTrajectory, max_waypoints: int = 64
    ) -> SymbolicTrajectory:
        """Calibration fallback: snap waypoints to their nearest landmarks.

        Ignores route geometry entirely — each sampled waypoint simply
        adopts the closest landmark within a generous radius.  Cruder than
        anchor calibration but survives sparse, noisy, or partly off-map
        input.  Raises :class:`CalibrationError` when even this yields
        fewer than two anchors (e.g. fully off-map trajectories).
        """
        radius_m = max(500.0, 4.0 * self.calibrator.config.search_radius_m)
        step = max(1, len(raw) // max_waypoints)
        waypoints = list(raw.points[::step])
        if waypoints[-1] is not raw.points[-1]:
            waypoints.append(raw.points[-1])
        entries: list[SymbolicEntry] = []
        for point in waypoints:
            hit = self.landmarks.nearest(point.point, radius_m)
            if hit is None:
                continue
            landmark = hit[1]
            if entries and entries[-1].landmark == landmark.landmark_id:
                continue
            entries.append(SymbolicEntry(landmark.landmark_id, point.t))
        if len(entries) < 2:
            raise CalibrationError(
                f"trajectory {raw.trajectory_id!r} yields {len(entries)} "
                f"geometric anchor(s) within {radius_m:.0f} m; cannot summarize"
            )
        metrics().counter("resilience.geometric_calibrations").inc()
        return SymbolicTrajectory(entries, raw.trajectory_id)

    def _extract_moving_only(
        self, raw: RawTrajectory, symbolic: SymbolicTrajectory
    ) -> list[SegmentFeatures]:
        """Extraction fallback: moving features only, no map matching.

        Routing features get constant placeholder values so the partition
        matrix stays complete; the selector is told to skip routing
        assessments entirely, so the placeholders never reach the text.
        """
        placeholder = RoutingFeatures(RoadGrade.FEEDER, 0.0, TrafficDirection.TWO_WAY, "")
        routing_defaults = {
            GRADE_OF_ROAD: float(int(placeholder.grade)),
            ROAD_WIDTH: placeholder.width_m,
            TRAFFIC_DIRECTION: float(int(placeholder.direction)),
        }
        out = []
        for segment in symbolic.segments():
            values, moving = self.pipeline.extract_moving(raw, segment)
            for definition in self.registry:
                if definition.kind is FeatureKind.ROUTING:
                    values[definition.key] = routing_defaults.get(definition.key, 0.0)
            out.append(SegmentFeatures(segment, values, placeholder, moving))
        metrics().counter("resilience.moving_only_extractions").inc()
        return out

    def _safe_landmark_name(self, landmark_id: int, default: str) -> str:
        try:
            return self.landmarks.get(landmark_id).name
        except ReproError:
            return default

    def _inject(self, stage: str, trajectory_id: str | None = None) -> None:
        """Fault-injection hook: no-op unless an injector is installed.

        *trajectory_id* lets item-targeted specs
        (:class:`repro.resilience.FaultSpec` with ``trajectory_id=``)
        fire only for the poison item, deterministically under any
        shard scheduling.
        """
        injector = self.fault_injector
        if injector is not None:
            injector.before(stage, trajectory_id)

    def _record(
        self, report: DegradationReport, stage: str, fallback: str, exc: Exception
    ) -> None:
        report.add(DegradationEvent(
            stage, fallback, f"{type(exc).__name__}: {exc}"
        ))
        emit_event(
            "degradation", stage,
            fallback=fallback, reason=f"{type(exc).__name__}: {exc}",
        )
        m = metrics()
        m.counter(f"resilience.fallback.{stage}").inc()
        m.counter("resilience.fallbacks").inc()

    # -- internals ----------------------------------------------------------------------

    def _summarize_partition(
        self,
        symbolic: SymbolicTrajectory,
        segment_features: list[SegmentFeatures],
        part_span: PartitionSpan,
        is_first: bool,
    ) -> PartitionSummary:
        with stage_scope("select", symbolic.trajectory_id):
            self._inject("select", symbolic.trajectory_id)
            assessment = self.selector.assess(symbolic, segment_features, part_span)
        with stage_scope("realize", symbolic.trajectory_id):
            self._inject("realize", symbolic.trajectory_id)
            with span("realize", selected=len(assessment.selected)):
                source = self.landmarks.get(
                    symbolic[part_span.start_landmark_index].landmark
                ).name
                destination = self.landmarks.get(
                    symbolic[part_span.end_landmark_index].landmark
                ).name
                sentence = partition_sentence(
                    source, destination, assessment.selected, self.registry, is_first
                )
        metrics().counter("realize.sentences").inc()
        return PartitionSummary(
            part_span, source, destination,
            assessment.assessments, assessment.selected, sentence,
        )
