"""Trajectory partitioning (paper Sec. IV).

The chain CRF of Eq. 1–2 reduces, under MAP inference, to choosing for each
interior landmark whether it is a partition boundary: a boundary at landmark
``l_i`` contributes ``-Ca * l_i.s`` to the potential; keeping segments
``TS_{i-1}`` and ``TS_i`` together contributes ``-S(TS_{i-1}, TS_i)``.
Minimizing the total potential is the dynamic program of Eq. 4; the
granularity-controlled variant (exactly ``k`` partitions, Algorithm 1 /
Eq. 5) is the 2-D dynamic program below.

Inputs are plain arrays so the module is trivially testable:

* ``similarities[i]`` = ``S(TS_i, TS_{i+1})`` for ``i = 0 .. n-2``;
* ``boundary_scores[i]`` = ``Ca * significance`` of the landmark shared by
  segments ``i`` and ``i+1`` (the landmark at symbolic index ``i + 1``).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.exceptions import PartitionError
from repro.core.types import PartitionSpan
from repro.obs import metrics, span


def _validate(similarities: Sequence[float], boundary_scores: Sequence[float]) -> int:
    if len(similarities) != len(boundary_scores):
        raise PartitionError(
            f"need one boundary score per junction: {len(similarities)} "
            f"similarities vs {len(boundary_scores)} scores"
        )
    return len(similarities) + 1  # number of segments


def spans_from_boundaries(n_segments: int, boundaries: Sequence[int]) -> list[PartitionSpan]:
    """Build partition spans from sorted junction indexes.

    A junction index ``i`` cuts between segments ``i`` and ``i + 1``.
    """
    if n_segments < 1:
        raise PartitionError("need at least one segment")
    cuts = sorted(set(boundaries))
    if cuts and (cuts[0] < 0 or cuts[-1] >= n_segments - 1):
        raise PartitionError(f"junction index out of range: {cuts}")
    spans = []
    start = 0
    for cut in cuts:
        spans.append(PartitionSpan(start, cut))
        start = cut + 1
    spans.append(PartitionSpan(start, n_segments - 1))
    return spans


def optimal_partition(
    similarities: Sequence[float], boundary_scores: Sequence[float]
) -> list[PartitionSpan]:
    """The global optimum of the chain potential (Eq. 4).

    On a chain the junction decisions decouple: cutting at junction ``i``
    is optimal exactly when its boundary reward ``Ca * l.s`` exceeds the
    similarity ``S`` of the segments it would separate.  The loop below is
    the closed form of the Eq.-4 dynamic program (each DP state depends only
    on its predecessor, so the per-junction minimum is the global minimum).
    """
    n_segments = _validate(similarities, boundary_scores)
    with span("partition.dp", segments=n_segments):
        cuts = [
            i
            for i, (s, b) in enumerate(zip(similarities, boundary_scores))
            if b > s
        ]
    m = metrics()
    m.counter("partition.calls").inc()
    m.counter("partition.dp_cells").inc(n_segments - 1)
    m.histogram("partition.cuts", buckets=(0, 1, 2, 3, 5, 8, 13, 21)).observe(len(cuts))
    return spans_from_boundaries(n_segments, cuts)


def optimal_k_partition(
    similarities: Sequence[float],
    boundary_scores: Sequence[float],
    k: int,
) -> list[PartitionSpan]:
    """The optimal partition into exactly *k* parts (Algorithm 1 / Eq. 5).

    DP state ``E[i][j]`` is the minimum potential of the first ``i + 1``
    segments split into ``j + 1`` partitions; the transition either closes a
    partition at junction ``i - 1`` (paying ``-Ca * l.s``) or extends the
    current one (paying ``-S``).
    """
    n_segments = _validate(similarities, boundary_scores)
    if not 1 <= k <= n_segments:
        raise PartitionError(
            f"k must lie in [1, {n_segments}] for {n_segments} segments, got {k}"
        )
    inf = float("inf")
    with span("partition.dp", segments=n_segments, k=k):
        # E[i][j]: best score over first i+1 segments using j+1 partitions.
        score = [[inf] * k for _ in range(n_segments)]
        choice: list[list[int]] = [[0] * k for _ in range(n_segments)]  # 1 = cut before i
        score[0][0] = 0.0
        for i in range(1, n_segments):
            merge_base = score[i - 1]
            for j in range(min(i + 1, k)):
                best = inf
                took_cut = 0
                if merge_base[j] < inf:
                    best = merge_base[j] - similarities[i - 1]
                if j > 0 and score[i - 1][j - 1] < inf:
                    cut = score[i - 1][j - 1] - boundary_scores[i - 1]
                    if cut < best:
                        best = cut
                        took_cut = 1
                score[i][j] = best
                choice[i][j] = took_cut
        if score[n_segments - 1][k - 1] == inf:
            raise PartitionError(
                f"no feasible partition of {n_segments} segments into {k}"
            )
        # Backtrack the cut junctions.
        cuts = []
        j = k - 1
        for i in range(n_segments - 1, 0, -1):
            if choice[i][j] == 1:
                cuts.append(i - 1)
                j -= 1
    m = metrics()
    m.counter("partition.calls").inc()
    m.counter("partition.dp_cells").inc(n_segments * k)
    m.histogram("partition.cuts", buckets=(0, 1, 2, 3, 5, 8, 13, 21)).observe(len(cuts))
    return spans_from_boundaries(n_segments, cuts)


def partition_potential(
    spans: Sequence[PartitionSpan],
    similarities: Sequence[float],
    boundary_scores: Sequence[float],
) -> float:
    """The chain potential of a given partition (lower is better).

    Useful for testing: the DP solutions must minimize this quantity.
    """
    n_segments = _validate(similarities, boundary_scores)
    covered = sorted(
        itertools.chain.from_iterable(span.segment_indexes() for span in spans)
    )
    if covered != list(range(n_segments)):
        raise PartitionError("spans must cover every segment exactly once")
    cut_set = {span.end_seg for span in spans if span.end_seg < n_segments - 1}
    total = 0.0
    for i in range(n_segments - 1):
        if i in cut_set:
            total -= boundary_scores[i]
        else:
            total -= similarities[i]
    return total


def brute_force_k_partition(
    similarities: Sequence[float],
    boundary_scores: Sequence[float],
    k: int,
) -> list[PartitionSpan]:
    """Exhaustive reference for :func:`optimal_k_partition` (tests only)."""
    n_segments = _validate(similarities, boundary_scores)
    if not 1 <= k <= n_segments:
        raise PartitionError(f"invalid k={k}")
    best_spans: list[PartitionSpan] | None = None
    best_score = float("inf")
    for cuts in itertools.combinations(range(n_segments - 1), k - 1):
        spans = spans_from_boundaries(n_segments, cuts)
        s = partition_potential(spans, similarities, boundary_scores)
        if s < best_score:
            best_score = s
            best_spans = spans
    assert best_spans is not None
    return best_spans
