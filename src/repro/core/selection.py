"""Feature selection by irregular rate (paper Sec. V).

A feature enters the summary of a partition only when its *irregular rate*
Γ_f(TP) clears the threshold η:

* **Routing features** (Sec. V-A) compare the partition's per-segment
  feature sequence against the same feature sequence on the most popular
  historical route between the partition endpoints, with an
  edit-distance-like measure whose substitution cost is the absolute
  difference for numeric features and 0/1 for categorical ones.
* **Moving features** (Sec. V-B) compare each segment's value against the
  regular value of the same landmark hop read off the historical feature
  map, averaging the normalized deviation over the partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SummarizerConfig
from repro.core.types import FeatureAssessment, PartitionSpan
from repro.exceptions import FeatureError
from repro.features import (
    GRADE_OF_ROAD,
    ROAD_WIDTH,
    SPEED,
    SPEED_CHANGES,
    STAY_POINTS,
    TRAFFIC_DIRECTION,
    U_TURNS,
    FeatureDtype,
    FeatureKind,
    FeaturePipeline,
    FeatureRegistry,
    RoutingFeatures,
    SegmentFeatures,
    normalize_sequence,
)
from repro.landmarks import LandmarkIndex
from repro.obs import metrics, span as obs_span
from repro.roadnet import RoadGrade, TrafficDirection
from repro.routes import HistoricalFeatureMap, PopularRouteMiner
from repro.trajectory import SymbolicTrajectory


def routing_feature_distance(
    seq_a: list[float], seq_b: list[float], dtype: FeatureDtype
) -> float:
    """Edit-distance-like measure between two feature-value sequences.

    Insertions and deletions cost 1; a substitution costs ``|a - b|`` for
    numeric features (on normalized values) and 0/1 for categorical ones.
    Implemented as the standard O(n·m) dynamic program.
    """
    n, m = len(seq_a), len(seq_b)
    if n == 0:
        return float(m)
    if m == 0:
        return float(n)
    prev = [float(j) for j in range(m + 1)]
    for i in range(1, n + 1):
        cur = [float(i)] + [0.0] * m
        for j in range(1, m + 1):
            if dtype is FeatureDtype.NUMERIC:
                sub_cost = abs(seq_a[i - 1] - seq_b[j - 1])
            else:
                sub_cost = 0.0 if seq_a[i - 1] == seq_b[j - 1] else 1.0
            cur[j] = min(
                prev[j - 1] + sub_cost,  # substitution / match
                prev[j] + 1.0,           # deletion
                cur[j - 1] + 1.0,        # insertion
            )
        prev = cur
    return prev[m]


def routing_irregular_rate(
    observed: list[float],
    popular: list[float],
    dtype: FeatureDtype,
    weight: float,
) -> float:
    """Γ_f for a routing feature (Sec. V-A).

    Numeric sequences are normalized by their own maxima before the distance
    (the paper's ``norm``); categorical sequences compare raw category codes
    (see DESIGN.md — max-scaling category codes would corrupt the equality
    test of Eq. 7).
    """
    if not observed and not popular:
        return 0.0
    if dtype is FeatureDtype.NUMERIC:
        observed = normalize_sequence(observed)
        popular = normalize_sequence(popular)
    distance = routing_feature_distance(observed, popular, dtype)
    return weight * distance / max(len(observed), len(popular))


def moving_irregular_rate(
    observed: list[float], regular: list[float], weight: float
) -> float:
    """Γ_f for a moving feature (Sec. V-B).

    The normalization constant is the largest observed value on the
    partition, exactly as the paper specifies.  When the partition observes
    only zeros there is nothing to normalize against and the rate is 0 —
    the summary reports unusual *presence* of behaviour, never its absence
    (reporting "zero U-turns" whenever the regular value is a tiny positive
    mean would select rare-event features on almost every partition).
    """
    if len(observed) != len(regular):
        raise FeatureError(
            f"observed/regular length mismatch: {len(observed)} vs {len(regular)}"
        )
    if not observed:
        return 0.0
    scale = max(abs(v) for v in observed)
    if scale == 0.0:
        return 0.0
    total = sum(abs(o - r) / scale for o, r in zip(observed, regular))
    return weight * total / len(observed)


@dataclass(frozen=True, slots=True)
class PartitionAssessment:
    """All feature assessments of one partition plus the selected subset."""

    span: PartitionSpan
    assessments: list[FeatureAssessment]
    selected: list[FeatureAssessment]


class FeatureSelector:
    """Computes irregular rates and selects summary features per partition."""

    def __init__(
        self,
        registry: FeatureRegistry,
        config: SummarizerConfig,
        pipeline: FeaturePipeline,
        popular_routes: PopularRouteMiner,
        feature_map: HistoricalFeatureMap,
        landmarks: LandmarkIndex,
    ) -> None:
        self.registry = registry
        self.config = config
        self.pipeline = pipeline
        self.popular_routes = popular_routes
        self.feature_map = feature_map
        self.landmarks = landmarks

    # -- public API -------------------------------------------------------------

    def assess(
        self,
        symbolic: SymbolicTrajectory,
        segment_features: list[SegmentFeatures],
        span: PartitionSpan,
        include_routing: bool = True,
    ) -> PartitionAssessment:
        """Assess every registered feature on one partition.

        With ``include_routing=False`` routing features are skipped
        entirely — the moving-features-only mode the summarizer degrades to
        when map matching is unavailable for the trajectory.
        """
        with obs_span("select", segments=span.segment_count) as sp:
            segments = [segment_features[i] for i in span.segment_indexes()]
            popular_hops: list[RoutingFeatures] = []
            if include_routing:
                src = symbolic[span.start_landmark_index].landmark
                dst = symbolic[span.end_landmark_index].landmark
                popular_hops = self._popular_hops(src, dst)

            assessments = []
            for definition in self.registry:
                if definition.kind is FeatureKind.ROUTING:
                    if not include_routing:
                        continue
                    assessment = self._assess_routing(definition, segments, popular_hops)
                else:
                    assessment = self._assess_moving(definition, symbolic, span, segments)
                assessments.append(assessment)
            selected = [
                a
                for a in assessments
                if a.irregular_rate >= self.config.irregular_threshold
            ]
            sp.set_tag("selected", len(selected))
        m = metrics()
        m.counter("selection.features_assessed").inc(len(assessments))
        m.counter("selection.features_selected").inc(len(selected))
        return PartitionAssessment(span, assessments, selected)

    # -- popular route ------------------------------------------------------------

    def _popular_hops(self, src: int, dst: int) -> list[RoutingFeatures]:
        """Routing features of each hop of the popular route from src to dst.

        When history records no route between the endpoints, the direct
        network path stands in — "most drivers drive straight there".
        """
        route = self.popular_routes.popular_route(src, dst)
        if route is None or len(route) < 2:
            route = [src, dst]
        hops = []
        for a, b in zip(route, route[1:]):
            try:
                hops.append(self.pipeline.hop_features(a, b))
            except FeatureError:
                continue  # unreachable hop: skip rather than abort the summary
        return hops

    # -- routing features ----------------------------------------------------------

    def _hop_value(self, definition, hop: RoutingFeatures) -> float | None:
        builtin = {
            GRADE_OF_ROAD: float(int(hop.grade)),
            ROAD_WIDTH: hop.width_m,
            TRAFFIC_DIRECTION: float(int(hop.direction)),
        }
        if definition.key in builtin:
            return builtin[definition.key]
        if definition.hop_value is not None:
            return float(definition.hop_value(hop))
        return None

    def _assess_routing(
        self,
        definition,
        segments: list[SegmentFeatures],
        popular_hops: list[RoutingFeatures],
    ) -> FeatureAssessment:
        observed_seq = [seg.values[definition.key] for seg in segments]
        popular_seq = [
            value
            for hop in popular_hops
            if (value := self._hop_value(definition, hop)) is not None
        ]
        if popular_seq:
            rate = routing_irregular_rate(
                observed_seq, popular_seq, definition.dtype,
                self.config.weight(definition.key),
            )
        else:
            rate = 0.0  # no basis for comparison: nothing irregular to report
        observed_rep = self._routing_representative(definition, observed_seq, segments)
        regular_rep = self._routing_regular_representative(definition, popular_seq)
        extras = self._routing_extras(definition, segments, popular_hops)
        return FeatureAssessment(
            definition.key, definition.kind, observed_rep, regular_rep, rate, extras
        )

    def _routing_representative(
        self, definition, observed_seq: list[float], segments: list[SegmentFeatures]
    ) -> float:
        if definition.dtype is FeatureDtype.CATEGORICAL:
            return _duration_weighted_mode(
                observed_seq, [s.segment.duration_s for s in segments]
            )
        durations = [s.segment.duration_s for s in segments]
        return _weighted_mean(observed_seq, durations)

    def _routing_regular_representative(
        self, definition, popular_seq: list[float]
    ) -> float:
        if not popular_seq:
            return 0.0
        if definition.dtype is FeatureDtype.CATEGORICAL:
            return _duration_weighted_mode(popular_seq, [1.0] * len(popular_seq))
        return sum(popular_seq) / len(popular_seq)

    def _routing_extras(
        self,
        definition,
        segments: list[SegmentFeatures],
        popular_hops: list[RoutingFeatures],
    ) -> dict[str, object]:
        extras: dict[str, object] = {}
        if definition.key == GRADE_OF_ROAD:
            dominant = max(
                segments, key=lambda s: s.segment.duration_s
            ).routing
            extras["observed_road_name"] = dominant.road_name
            extras["observed_grade"] = dominant.grade
            if popular_hops:
                longest = popular_hops[0]
                extras["regular_road_name"] = longest.road_name
                extras["regular_grade"] = _mode_grade(popular_hops)
        return extras

    # -- moving features -------------------------------------------------------------

    def _assess_moving(
        self,
        definition,
        symbolic: SymbolicTrajectory,
        span: PartitionSpan,
        segments: list[SegmentFeatures],
    ) -> FeatureAssessment:
        key = definition.key
        observed_seq = [seg.values[key] for seg in segments]
        regular_seq = []
        for seg in segments:
            regular = self.feature_map.regular_value(
                seg.segment.start_landmark, seg.segment.end_landmark, key
            )
            regular_seq.append(regular if regular is not None else seg.values[key])
        rate = moving_irregular_rate(
            observed_seq, regular_seq, self.config.weight(key)
        )
        if key in (STAY_POINTS, U_TURNS, SPEED_CHANGES):
            # Event counts add up across the partition.
            observed_rep = sum(observed_seq)
            regular_rep = sum(regular_seq)
        else:
            # Intensive quantities (speed, user-defined rates/fractions)
            # average over the partition, weighted by segment duration.
            durations = [s.segment.duration_s for s in segments]
            observed_rep = _weighted_mean(observed_seq, durations)
            regular_rep = _weighted_mean(regular_seq, durations)
        extras = self._moving_extras(key, segments)
        return FeatureAssessment(
            key, definition.kind, observed_rep, regular_rep, rate, extras
        )

    def _moving_extras(self, key: str, segments: list[SegmentFeatures]) -> dict[str, object]:
        extras: dict[str, object] = {}
        stay_points = [p for s in segments for p in s.moving.stay_points]
        u_turns = [u for s in segments for u in s.moving.u_turns]
        if stay_points:
            extras["stay_points"] = stay_points
            extras["stay_total_s"] = sum(p.duration_s for p in stay_points)
        if u_turns:
            extras["u_turns"] = u_turns
            extras["u_turn_places"] = [
                hit[1].name
                for u in u_turns
                if (hit := self.landmarks.nearest(u.location)) is not None
            ]
        return extras


def _weighted_mean(values: list[float], weights: list[float]) -> float:
    total_weight = sum(weights)
    if total_weight <= 0.0:
        return sum(values) / len(values) if values else 0.0
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def _duration_weighted_mode(values: list[float], weights: list[float]) -> float:
    tally: dict[float, float] = {}
    for value, weight in zip(values, weights):
        tally[value] = tally.get(value, 0.0) + max(weight, 1e-9)
    return max(tally, key=lambda v: (tally[v], -v))


def _mode_grade(hops: list[RoutingFeatures]) -> RoadGrade:
    tally: dict[RoadGrade, int] = {}
    for hop in hops:
        tally[hop.grade] = tally.get(hop.grade, 0) + 1
    return max(tally, key=lambda g: (tally[g], -int(g)))
