"""Summarizer configuration (the knobs of paper Sec. VII-B)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigError


@dataclass(frozen=True)
class SummarizerConfig:
    """Tunable parameters of the partition-and-summarization pipeline.

    The defaults are the paper's experiment settings: landmark-significance
    weight ``Ca = 0.5``, every feature weight 1, and irregular-rate
    threshold ``η = 0.2``.
    """

    #: Weight of landmark significance in the potential function (Eq. 2).
    ca: float = 0.5
    #: Features with irregular rate >= this threshold enter the summary.
    irregular_threshold: float = 0.2
    #: Per-feature weights ``w_f``; unlisted features default to 1.
    feature_weights: dict[str, float] = field(default_factory=dict)
    #: ``popular_route`` transitions need at least this support.
    popular_route_min_support: int = 1

    def __post_init__(self) -> None:
        if self.ca < 0.0:
            raise ConfigError(f"Ca must be non-negative, got {self.ca}")
        if self.irregular_threshold < 0.0:
            raise ConfigError(
                f"irregular threshold must be non-negative, got {self.irregular_threshold}"
            )
        for key, weight in self.feature_weights.items():
            if weight < 0.0:
                raise ConfigError(f"negative weight for feature {key!r}: {weight}")
        if self.popular_route_min_support < 1:
            raise ConfigError("popular_route_min_support must be at least 1")

    def weight(self, key: str) -> float:
        """Weight of feature *key* (1.0 unless overridden)."""
        return self.feature_weights.get(key, 1.0)

    def with_weight(self, key: str, weight: float) -> "SummarizerConfig":
        """A copy with one feature weight overridden."""
        weights = dict(self.feature_weights)
        weights[key] = weight
        return SummarizerConfig(
            ca=self.ca,
            irregular_threshold=self.irregular_threshold,
            feature_weights=weights,
            popular_route_min_support=self.popular_route_min_support,
        )
