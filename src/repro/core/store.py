"""Semantic queries over summary collections — the paper's second stated
future-work item (Sec. IX: "semantic queries on trajectory summarization").

A :class:`SummaryStore` holds the structured summaries of a corpus and
answers queries that mix three predicates:

* **feature predicates** — which features were selected, with optional
  value ranges ("trips that reported a U-turn", "speed below 25 km/h");
* **landmark predicates** — which places the summary mentions;
* **free text** — ranked retrieval over the summary texts (backed by the
  Sec. VI-C inverted index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import TrajectorySummary
from repro.exceptions import ConfigError
from repro.textproc import InvertedIndex


@dataclass(frozen=True, slots=True)
class FeaturePredicate:
    """Match summaries that selected *key*, optionally in a value range.

    The range applies to the feature's observed representative value
    (km/h for speed, counts for stays/U-turns).
    """

    key: str
    min_value: float | None = None
    max_value: float | None = None

    def matches(self, summary: TrajectorySummary) -> bool:
        for partition in summary.partitions:
            for assessment in partition.selected:
                if assessment.key != self.key:
                    continue
                if self.min_value is not None and assessment.observed < self.min_value:
                    continue
                if self.max_value is not None and assessment.observed > self.max_value:
                    continue
                return True
        return False


class SummaryStore:
    """An in-memory, queryable collection of trajectory summaries."""

    def __init__(self) -> None:
        self._summaries: dict[str, TrajectorySummary] = {}
        self._text_index = InvertedIndex()

    def add(self, summary: TrajectorySummary) -> None:
        """Insert (or replace) one summary, keyed by its trajectory id."""
        if not summary.trajectory_id:
            raise ConfigError("summaries must carry a trajectory id to be stored")
        self._summaries[summary.trajectory_id] = summary
        self._text_index.add(summary.trajectory_id, summary.text)

    def add_all(self, summaries) -> None:
        """Bulk :meth:`add`."""
        for summary in summaries:
            self.add(summary)

    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, trajectory_id: str) -> bool:
        return trajectory_id in self._summaries

    def get(self, trajectory_id: str) -> TrajectorySummary:
        """Summary by trajectory id."""
        try:
            return self._summaries[trajectory_id]
        except KeyError:
            raise ConfigError(f"unknown trajectory id {trajectory_id!r}") from None

    # -- queries ------------------------------------------------------------------

    def query(
        self,
        features: list[FeaturePredicate] | None = None,
        mentions_landmark: str | None = None,
        text: str | None = None,
        limit: int | None = None,
    ) -> list[TrajectorySummary]:
        """Summaries satisfying *all* the given predicates.

        With a *text* query the results come back in relevance order;
        otherwise in insertion order.  ``limit`` caps the result count.
        """
        if limit is not None and limit < 1:
            raise ConfigError("limit must be at least 1")

        if text is not None:
            ranked = self._text_index.search_ranked(
                text, limit=len(self._summaries) or 1
            )
            ordered = [self._summaries[doc_id] for doc_id, _ in ranked]
        else:
            ordered = list(self._summaries.values())

        out = []
        for summary in ordered:
            if features and not all(p.matches(summary) for p in features):
                continue
            if mentions_landmark is not None and (
                mentions_landmark not in summary.mentioned_landmark_names()
            ):
                continue
            out.append(summary)
            if limit is not None and len(out) >= limit:
                break
        return out

    def count_by_feature(self) -> dict[str, int]:
        """How many stored summaries selected each feature at least once."""
        counts: dict[str, int] = {}
        for summary in self._summaries.values():
            for key in summary.selected_feature_keys():
                counts[key] = counts.get(key, 0) + 1
        return counts
