"""Persistence of trained STMaker models.

Training an STMaker means calibrating a trajectory corpus into a transfer
network and a historical feature map — work worth doing once.  This module
bundles everything a summarizer needs (road network, scored landmarks,
transfer network, feature map, configuration) into a single versioned
dict, and :func:`save_stmaker`/:func:`load_stmaker` write/read it through
the artifact layer (:mod:`repro.artifact`): crash-safe atomic writes, a
content fingerprint, and a choice of the legacy JSON format or a compact
binary format (pickle protocol 5 of the same dict).  The codec is picked
by file extension (``*.json`` → JSON) or forced with ``format=``; loads
sniff the file, so callers never need to know which codec wrote it.

Custom feature *definitions* carry Python callables and cannot be
serialized; only their keys are stored, and :func:`load_stmaker` takes an
optional registry carrying the same definitions for models trained with
extensions.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import SummarizerConfig
from repro.core.summarizer import STMaker
from repro.exceptions import ConfigError
from repro.features import FeatureRegistry, default_registry
from repro.landmarks.io import landmarks_from_dict, landmarks_to_dict
from repro.roadnet import network_from_dict, network_to_dict
from repro.routes import HistoricalFeatureMap, TransferNetwork

_FORMAT_VERSION = 1


def stmaker_to_dict(stmaker: STMaker) -> dict:
    """JSON-compatible snapshot of a trained STMaker."""
    return {
        "version": _FORMAT_VERSION,
        "network": network_to_dict(stmaker.network),
        "landmarks": landmarks_to_dict(stmaker.landmarks),
        "transfers": stmaker.transfers.to_dict(),
        "feature_map": stmaker.feature_map.to_dict(),
        "config": {
            "ca": stmaker.config.ca,
            "irregular_threshold": stmaker.config.irregular_threshold,
            "feature_weights": stmaker.config.feature_weights,
            "popular_route_min_support": stmaker.config.popular_route_min_support,
        },
        "feature_keys": stmaker.registry.keys(),
    }


def stmaker_from_dict(
    data: dict, registry: FeatureRegistry | None = None
) -> STMaker:
    """Rebuild an STMaker from :func:`stmaker_to_dict` output.

    *registry* must be provided when the model was trained with custom
    features (their extractors are code, not data); its keys must cover
    the stored ``feature_keys``.
    """
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ConfigError(f"unsupported STMaker format version: {version}")
    registry = registry or default_registry(
        include_speed_change="speed_changes" in data["feature_keys"]
    )
    missing = [key for key in data["feature_keys"] if key not in registry]
    if missing:
        raise ConfigError(
            f"model was trained with features {missing}; pass a registry "
            "containing their definitions"
        )
    config = SummarizerConfig(
        ca=data["config"]["ca"],
        irregular_threshold=data["config"]["irregular_threshold"],
        feature_weights=dict(data["config"]["feature_weights"]),
        popular_route_min_support=data["config"]["popular_route_min_support"],
    )
    return STMaker(
        network_from_dict(data["network"]),
        landmarks_from_dict(data["landmarks"]),
        TransferNetwork.from_dict(data["transfers"]),
        HistoricalFeatureMap.from_dict(data["feature_map"]),
        config=config,
        registry=registry,
    )


def save_stmaker(
    stmaker: STMaker, path: str | Path, *, format: str | None = None
) -> None:
    """Write a trained STMaker to *path* (atomically, fingerprinted).

    *format* is ``"json"`` or ``"binary"``; by default ``*.json`` paths
    get JSON and everything else the binary codec.  The write goes to a
    temp file in the destination directory and is renamed into place, so
    a crash mid-write leaves *path* absent or intact, never corrupt.
    """
    # Imported lazily: repro.artifact imports this module at its top level.
    from repro.artifact import save_artifact

    save_artifact(stmaker, path, format=format)


def load_stmaker(
    path: str | Path, registry: FeatureRegistry | None = None
) -> STMaker:
    """Read a trained STMaker written by :func:`save_stmaker` (either codec)."""
    from repro.artifact import load_artifact

    stmaker, _ = load_artifact(path, registry=registry)
    return stmaker
