"""Trajectory-group summarization — the paper's stated future work.

Sec. IX: "We expect this work will trigger several interesting open
problems in this direction, such as summarization of trajectory group".
This module provides that extension on top of the trained STMaker: given a
set of trajectories over the same origin/destination (a flow), it

1. calibrates every member and identifies the *consensus route* (the modal
   landmark sequence) and how dominant it is;
2. aggregates each feature's observed and regular values across members
   and selects the group-level irregular features with the same η
   threshold as single-trajectory summarization;
3. flags *outlier members* — trajectories whose individual behaviour
   deviates far beyond the group's (e.g. the one cab that made a U-turn);
4. realizes a short group summary text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.summarizer import STMaker
from repro.core.templates import number_word, phrase_for, pluralize
from repro.core.types import FeatureAssessment, PartitionSpan
from repro.exceptions import CalibrationError, SummarizationError
from repro.trajectory import RawTrajectory


@dataclass(frozen=True, slots=True)
class GroupMember:
    """One group member's whole-trip assessment."""

    trajectory_id: str
    landmark_ids: tuple[int, ...]
    assessments: list[FeatureAssessment]

    def rate(self, key: str) -> float:
        for assessment in self.assessments:
            if assessment.key == key:
                return assessment.irregular_rate
        return 0.0


@dataclass(frozen=True, slots=True)
class GroupSummary:
    """The summary of a trajectory group."""

    source_name: str
    destination_name: str
    member_count: int
    consensus_share: float
    aggregated: list[FeatureAssessment]
    selected: list[FeatureAssessment]
    outliers: list[str]  # trajectory ids
    text: str


class GroupSummarizer:
    """Summarizes flows of trajectories sharing an origin/destination."""

    def __init__(self, stmaker: STMaker, outlier_factor: float = 3.5) -> None:
        if outlier_factor <= 1.0:
            raise SummarizationError("outlier factor must exceed 1")
        self.stmaker = stmaker
        self.outlier_factor = outlier_factor

    def summarize_group(self, trajectories: list[RawTrajectory]) -> GroupSummary:
        """Summarize a group; raises when fewer than two members calibrate."""
        members = self._assess_members(trajectories)
        if len(members) < 2:
            raise SummarizationError(
                f"a group needs at least 2 calibratable members, got {len(members)}"
            )
        source, destination = self._group_endpoints(members)
        consensus_share = self._consensus_share(members)
        aggregated = self._aggregate(members)
        threshold = self.stmaker.config.irregular_threshold
        selected = [a for a in aggregated if a.irregular_rate >= threshold]
        outliers = self._outliers(members, aggregated)
        text = self._render(
            source, destination, len(members), consensus_share, selected, outliers
        )
        return GroupSummary(
            source, destination, len(members), consensus_share,
            aggregated, selected, outliers, text,
        )

    # -- steps -------------------------------------------------------------------

    def _assess_members(self, trajectories: list[RawTrajectory]) -> list[GroupMember]:
        members = []
        for raw in trajectories:
            try:
                symbolic = self.stmaker.calibrator.calibrate(raw)
            except CalibrationError:
                continue
            features = self.stmaker.pipeline.extract(raw, symbolic)
            span = PartitionSpan(0, symbolic.segment_count - 1)
            assessment = self.stmaker.selector.assess(symbolic, features, span)
            members.append(
                GroupMember(
                    raw.trajectory_id,
                    tuple(symbolic.landmark_ids()),
                    assessment.assessments,
                )
            )
        return members

    def _group_endpoints(self, members: list[GroupMember]) -> tuple[str, str]:
        """Modal source and destination landmark names."""
        landmarks = self.stmaker.landmarks

        def modal(values: list[int]) -> int:
            tally: dict[int, int] = {}
            for v in values:
                tally[v] = tally.get(v, 0) + 1
            return max(tally, key=lambda v: (tally[v], -v))

        src = modal([m.landmark_ids[0] for m in members])
        dst = modal([m.landmark_ids[-1] for m in members])
        return landmarks.get(src).name, landmarks.get(dst).name

    def _consensus_share(self, members: list[GroupMember]) -> float:
        """Share of members following the modal landmark sequence."""
        tally: dict[tuple[int, ...], int] = {}
        for member in members:
            tally[member.landmark_ids] = tally.get(member.landmark_ids, 0) + 1
        return max(tally.values()) / len(members)

    def _aggregate(self, members: list[GroupMember]) -> list[FeatureAssessment]:
        """Mean observed/regular/rate per feature over the group.

        Extras from the member with the highest rate are kept so that
        templates can still name roads and places.
        """
        out = []
        for definition in self.stmaker.registry:
            key = definition.key
            rows = [
                a for m in members for a in m.assessments if a.key == key
            ]
            if not rows:
                continue
            top = max(rows, key=lambda a: a.irregular_rate)
            out.append(
                FeatureAssessment(
                    key,
                    definition.kind,
                    sum(a.observed for a in rows) / len(rows),
                    sum(a.regular for a in rows) / len(rows),
                    sum(a.irregular_rate for a in rows) / len(rows),
                    dict(top.extras),
                )
            )
        return out

    def _outliers(
        self, members: list[GroupMember], aggregated: list[FeatureAssessment]
    ) -> list[str]:
        """Members whose individual rate dwarfs the group mean on a feature.

        The materiality bar is half the selection threshold: a rare event
        (one U-turn on a long trip) dilutes under Sec. V-B's division by
        |TP| yet is precisely what makes a member an outlier in its group.
        """
        materiality = 0.5 * self.stmaker.config.irregular_threshold
        group_rate = {a.key: a.irregular_rate for a in aggregated}
        flagged = []
        for member in members:
            for key, mean_rate in group_rate.items():
                rate = member.rate(key)
                if rate >= materiality and rate > self.outlier_factor * max(
                    mean_rate, 1e-9
                ):
                    flagged.append(member.trajectory_id)
                    break
        return flagged

    def _render(
        self,
        source: str,
        destination: str,
        count: int,
        consensus: float,
        selected: list[FeatureAssessment],
        outliers: list[str],
    ) -> str:
        opener = (
            f"Between the {source} and the {destination}, "
            f"{number_word(count)} {pluralize(count, 'car')} travelled"
        )
        if consensus >= 0.5:
            opener += f", mostly along the same route ({consensus:.0%})"
        sentences = [opener + "."]
        if selected:
            phrases = [
                phrase_for(a, self.stmaker.registry) for a in selected
            ]
            sentences.append("On average they moved " + ", and ".join(phrases) + ".")
        else:
            sentences.append("On average they moved as usual.")
        if outliers:
            n = len(outliers)
            sentences.append(
                f"{number_word(n).capitalize()} {pluralize(n, 'trip')} "
                "deviated notably from the group."
            )
        return " ".join(sentences)
