"""Text realization: phrase templates (Table V) and sentence templates
(Table VI).

Each selected feature expands into a phrase through its template;
categorical values are rendered with their semantic names ("highway", not
"1"), numeric values with intuitive comparative descriptors
(faster/slower, wider/narrower) against the regular value, exactly as the
paper prescribes in Sec. VI-A.  Feature-extraction by-products (stay-point
durations, U-turn places) enrich the phrases.
"""

from __future__ import annotations

from repro.core.types import FeatureAssessment, PartitionSummary
from repro.exceptions import SummarizationError
from repro.features import (
    GRADE_OF_ROAD,
    ROAD_WIDTH,
    SPEED,
    SPEED_CHANGES,
    STAY_POINTS,
    TRAFFIC_DIRECTION,
    U_TURNS,
    FeatureRegistry,
)
from repro.roadnet import RoadGrade, TrafficDirection

_NUMBER_WORDS = (
    "zero", "one", "two", "three", "four", "five", "six",
    "seven", "eight", "nine", "ten", "eleven", "twelve",
)


def number_word(n: int) -> str:
    """Small counts as words ("two"), large ones as digits ("17")."""
    if 0 <= n < len(_NUMBER_WORDS):
        return _NUMBER_WORDS[n]
    return str(n)


def pluralize(n: int, singular: str, plural: str | None = None) -> str:
    """``1 stay point`` / ``2 stay points``."""
    if n == 1:
        return singular
    return plural if plural is not None else singular + "s"


def _grade_phrase(a: FeatureAssessment) -> str:
    observed = a.extras.get("observed_grade", RoadGrade(int(round(a.observed))))
    name = a.extras.get("observed_road_name")
    given = observed.display_name + (f" ({name})" if name else "")
    regular = a.extras.get("regular_grade")
    if regular is not None and regular != observed:
        return (
            f"through {given} while most drivers choose {regular.display_name}"
        )
    return f"through {given} while most drivers choose a different road"


def _width_phrase(a: FeatureAssessment) -> str:
    comparative = "wider" if a.observed < a.regular else "narrower"
    return (
        f"through {a.observed:.0f} metres wide roads while most drivers "
        f"prefer {comparative} roads"
    )


def _direction_phrase(a: FeatureAssessment) -> str:
    observed = TrafficDirection(int(round(a.observed)))
    regular = TrafficDirection(int(round(a.regular))) if a.regular else None
    if regular is not None and regular != observed:
        return (
            f"through a {observed.display_name} while most drivers prefer "
            f"a {regular.display_name}"
        )
    return f"through a {observed.display_name}"


def _speed_phrase(a: FeatureAssessment) -> str:
    delta = a.observed - a.regular
    comparative = "faster" if delta > 0 else "slower"
    return (
        f"with the speed of {a.observed:.0f} km/h which was "
        f"{abs(delta):.0f} km/h {comparative} than usual"
    )


def _stay_phrase(a: FeatureAssessment) -> str:
    count = int(round(a.observed))
    phrase = f"with {number_word(count)} {pluralize(count, 'staying point')}"
    total = a.extras.get("stay_total_s")
    if total:
        phrase += f" (in total for about {total:.0f} seconds)"
    return phrase


def _u_turn_phrase(a: FeatureAssessment) -> str:
    count = int(round(a.observed))
    phrase = f"with conducting {number_word(count)} {pluralize(count, 'U-turn')}"
    places = a.extras.get("u_turn_places")
    if places:
        unique = list(dict.fromkeys(places))
        phrase += " at " + _join_names(unique)
    return phrase


def _speed_change_phrase(a: FeatureAssessment) -> str:
    count = int(round(a.observed))
    return (
        f"with {number_word(count)} sharp speed "
        f"{pluralize(count, 'change')}"
    )


_BUILTIN_PHRASES = {
    GRADE_OF_ROAD: _grade_phrase,
    ROAD_WIDTH: _width_phrase,
    TRAFFIC_DIRECTION: _direction_phrase,
    SPEED: _speed_phrase,
    STAY_POINTS: _stay_phrase,
    U_TURNS: _u_turn_phrase,
    SPEED_CHANGES: _speed_change_phrase,
}


def phrase_for(assessment: FeatureAssessment, registry: FeatureRegistry) -> str:
    """Expand one selected feature into its summary phrase."""
    builtin = _BUILTIN_PHRASES.get(assessment.key)
    if builtin is not None:
        return builtin(assessment)
    definition = registry.get(assessment.key)
    if definition.phrase is not None:
        return definition.phrase(assessment)
    # Generic fallback for extension features without a custom template.
    return (
        f"with {definition.short_label} of {assessment.observed:.1f} "
        f"(usually {assessment.regular:.1f})"
    )


def _join_names(names: list[str]) -> str:
    if not names:
        raise SummarizationError("cannot join an empty name list")
    if len(names) == 1:
        return names[0]
    return ", ".join(names[:-1]) + " and " + names[-1]


def _join_phrases(phrases: list[str]) -> str:
    if len(phrases) == 1:
        return phrases[0]
    return ", ".join(phrases[:-1]) + ", and " + phrases[-1]


def partition_sentence(
    source_name: str,
    destination_name: str,
    selected: list[FeatureAssessment],
    registry: FeatureRegistry,
    is_first: bool,
) -> str:
    """One sentence of the summary (Table VI).

    First partition: "The car started from the A to the B ...";
    later partitions: "Then it moved from the B to the C ...";
    a partition with no selected feature ends in "smoothly".
    """
    opener = (
        f"The car started from the {source_name} to the {destination_name}"
        if is_first
        else f"Then it moved from the {source_name} to the {destination_name}"
    )
    if not selected:
        return f"{opener} smoothly."
    # Route phrases ("through ...") read best immediately after the opener.
    through = [a for a in selected if phrase_for(a, registry).startswith("through")]
    others = [a for a in selected if a not in through]
    parts = [phrase_for(a, registry) for a in through + others]
    return f"{opener} {_join_phrases(parts)}."


def summary_text(partitions: list[PartitionSummary]) -> str:
    """Concatenate the partition sentences into the final summary."""
    if not partitions:
        raise SummarizationError("a summary needs at least one partition")
    return " ".join(p.sentence for p in partitions)
