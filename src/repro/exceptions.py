"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the pipeline with a single ``except`` clause
while still being able to discriminate the individual stages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Raised for invalid geometric input (empty polylines, bad coordinates)."""


class RoadNetworkError(ReproError):
    """Raised for inconsistent road-network operations (unknown nodes, ...)."""


class NoPathError(RoadNetworkError):
    """Raised when no path exists between two road-network nodes."""


class TrajectoryError(ReproError):
    """Raised for malformed trajectories (too short, unsorted timestamps)."""


class CalibrationError(ReproError):
    """Raised when a raw trajectory cannot be calibrated to landmarks."""


class MapMatchError(ReproError):
    """Raised when map matching cannot produce a road sequence."""


class FeatureError(ReproError):
    """Raised for unknown features or invalid feature definitions."""


class PartitionError(ReproError):
    """Raised for invalid partition requests (e.g. k larger than #segments)."""


class SummarizationError(ReproError):
    """Raised when the summarizer cannot produce a summary."""


class TransientError(ReproError):
    """A stage failure expected to succeed on retry (timeouts, flaky IO).

    :meth:`STMaker.summarize` lets transient errors propagate instead of
    degrading the summary, so a batch layer can retry the whole item with
    backoff; :meth:`STMaker.summarize_many` does exactly that.
    """


class DeadlineExceeded(ReproError):
    """Raised (or recorded) when a deadline budget runs out mid-batch."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""


class ArtifactError(ReproError):
    """Raised for unusable city-model artifacts.

    Covers unreadable files, unknown magic/format versions, and content
    fingerprints that do not match the payload (truncated or tampered
    files).  A crash *during* :func:`repro.artifact.save_artifact` never
    produces one of these for the target path — writes are atomic
    (temp file + rename), so the target is either absent, the previous
    version, or the complete new version.
    """


class WorkerCrashError(ReproError):
    """A worker died — or would have died — while serving a batch item.

    Raised (and recorded in quarantine entries) in three situations:

    * a worker *process* serving a shard terminated abruptly (segfault,
      ``os._exit`` from native code, OOM kill) and shard supervision
      isolated the poison item by retry and bisection;
    * a worker stopped making progress past its deadline budget and was
      killed by the supervisor (a hang is a crash that wastes more time);
    * a ``crash``/``hang``/``oom-sim`` fault fired in a context that
      cannot be killed safely (the serial loop, a thread worker) — the
      fault raises this instead, so serial and supervised process runs
      quarantine the same items.
    """


class OverloadError(ReproError):
    """Admission control shed work instead of accepting it.

    Raised by the serving intake when a batch would exceed the configured
    queue/tenant budgets under a ``shed="reject"`` policy.  Deliberate
    back-pressure, not a bug: the caller should retry later, lower the
    batch size, or run with a ``shed="degrade"`` policy.
    """


class ServingError(ReproError):
    """Raised when the sharded serving layer violates an invariant.

    Seeing one means a bug in :mod:`repro.serving` itself (lost, duplicated
    or out-of-range item indices during reassembly), never bad user input —
    bad items are quarantined, not raised.
    """


class ServerClosedError(ReproError):
    """The request front-end is not accepting or serving work.

    Raised by :meth:`repro.server.SummarizationServer.submit` when the
    server has not been started (or has been stopped), and delivered
    through pending :class:`~repro.server.RequestHandle` s when a
    non-draining ``stop()`` abandons queued requests — a typed verdict,
    never a hang.
    """
