"""Batch partitioning: split N items into shards of index assignments.

A :class:`Shard` is pure bookkeeping — a shard id plus the *input indices*
it owns.  Keeping shards index-based (instead of copying items) makes the
invariants trivial to state and test: across every shard of a plan, each
index in ``range(n)`` appears exactly once.

Three assignment modes (:data:`SHARD_MODES`):

* ``"balanced"`` — contiguous slices whose sizes differ by at most one;
  the default, and the best cache/order locality;
* ``"round_robin"`` — index ``i`` goes to shard ``i % num_shards``;
  spreads a front-loaded batch (e.g. sorted by size) evenly;
* ``"hashed"`` — shard is a stable hash of the item's key (CRC-32, never
  Python's seeded ``hash``), so the same trajectory id always lands on
  the same shard across runs and processes — the mode to use when shards
  map to sticky downstream state (caches, per-key rate limits).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigError

#: The supported shard assignment modes.
SHARD_MODES: tuple[str, ...] = ("balanced", "round_robin", "hashed")


@dataclass(frozen=True, slots=True)
class Shard:
    """One shard of a batch plan: which input indices it owns."""

    shard_id: int
    #: Input indices assigned to this shard, in ascending order.
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def stable_key_hash(key: str) -> int:
    """A process- and run-stable non-negative hash of *key*.

    Built on CRC-32 rather than ``hash()``: Python seeds string hashing
    per process (PYTHONHASHSEED), which would silently re-shard every key
    on restart.
    """
    return zlib.crc32(str(key).encode("utf-8"))


def plan_shards(
    n: int,
    *,
    mode: str = "balanced",
    num_shards: int | None = None,
    shard_size: int | None = None,
    keys: Sequence[str] | None = None,
) -> list[Shard]:
    """Assign indices ``0..n-1`` to shards; empty shards are dropped.

    Exactly one sizing knob applies: ``shard_size`` (number of shards is
    ``ceil(n / shard_size)``) wins over ``num_shards`` when both are
    given.  ``keys`` (one per index) is required for ``"hashed"`` mode and
    ignored otherwise.  The returned shards partition ``range(n)``: every
    index appears in exactly one shard.
    """
    if mode not in SHARD_MODES:
        raise ConfigError(f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}")
    if n < 0:
        raise ConfigError(f"cannot shard a negative batch size: {n}")
    if shard_size is not None:
        if shard_size < 1:
            raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
        count = math.ceil(n / shard_size) if n else 1
    elif num_shards is not None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        count = num_shards
    else:
        raise ConfigError("one of num_shards/shard_size is required")
    if n == 0:
        return []
    count = min(count, n)

    if mode == "balanced":
        # Contiguous slices; the first n % count shards take one extra item.
        base, extra = divmod(n, count)
        assignments: list[list[int]] = []
        start = 0
        for shard_id in range(count):
            size = base + (1 if shard_id < extra else 0)
            assignments.append(list(range(start, start + size)))
            start += size
    elif mode == "round_robin":
        assignments = [list(range(shard_id, n, count)) for shard_id in range(count)]
    else:  # hashed
        if keys is None:
            raise ConfigError("hashed shard mode requires per-item keys")
        if len(keys) != n:
            raise ConfigError(f"{len(keys)} keys for {n} items")
        assignments = [[] for _ in range(count)]
        for index, key in enumerate(keys):
            assignments[stable_key_hash(key) % count].append(index)

    return [
        Shard(shard_id, tuple(indices))
        for shard_id, indices in enumerate(assignments)
        if indices
    ]
