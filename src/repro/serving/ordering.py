"""Order-preserving reassembly of per-item outcomes into a batch result.

Shards complete in whatever order the scheduler allows; callers of
``summarize_many`` are promised results in *input* order regardless.  This
module is that guarantee: :func:`reassemble` takes the
:class:`~repro.resilience.ItemOutcome` s of a batch in **any** order and
rebuilds the exact :class:`~repro.resilience.BatchResult` the serial loop
would have produced — reassembly is the permutation inverse of whatever
completion order happened.

The index bookkeeping is checked, not assumed: a lost, duplicated, or
out-of-range index raises :class:`~repro.exceptions.ServingError`, because
silently returning a hole where an item should be is how batch servers
corrupt downstream joins.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ServingError
from repro.resilience.batch import BatchResult, ItemOutcome


def reassemble(outcomes: Iterable[ItemOutcome], total: int) -> BatchResult:
    """Rebuild the input-ordered :class:`BatchResult` of *total* items.

    *outcomes* may arrive in any completion order; the result lists
    (summaries, quarantine entries, sanitization reports) come back
    exactly as the serial loop would have appended them.
    """
    slots: list[ItemOutcome | None] = [None] * total
    for outcome in outcomes:
        if not 0 <= outcome.index < total:
            raise ServingError(
                f"item index {outcome.index} outside batch of {total}"
            )
        if slots[outcome.index] is not None:
            raise ServingError(f"duplicate outcome for item index {outcome.index}")
        slots[outcome.index] = outcome

    result = BatchResult()
    for index, outcome in enumerate(slots):
        if outcome is None:
            raise ServingError(f"no outcome for item index {index}")
        result.sanitization.append(outcome.sanitization)
        result.latencies.append(outcome.latency)
        if outcome.summary is not None:
            result.summaries.append(outcome.summary)
        if outcome.quarantine is not None:
            result.quarantined.append(outcome.quarantine)
    return result
