"""Process-backed shard execution over a city-model artifact.

The thread pool in :mod:`repro.serving.pool` shares the trained model's
memory but serializes pure-Python stages on the GIL; this module is the
``executor="process"`` backend that breaks it.  The division of labour:

* the **parent** (``prepare_process_batch``) publishes the model as a
  binary city-model artifact (:func:`repro.artifact.ensure_artifact` when
  no explicit path is given), validates that everything crossing the
  boundary pickles, and packs each shard into a :class:`ShardTask` —
  item slices, batch options, the artifact reference
  ``(path, fingerprint)``, the fault-injector recipe, and which
  telemetry sinks the parent has enabled;
* each **worker process** (:func:`run_shard_in_process`) resets any
  obs state inherited over ``fork`` (an inherited JSONL sink would
  double-write the parent's file), installs fresh sinks, rebuilds the
  STMaker once per process via :func:`repro.artifact.cached_stmaker`,
  and runs the shard through the same ``STMaker._summarize_item`` path
  the serial loop and the thread pool use;
* the worker returns a :class:`ShardResult`: the outcomes plus a
  :class:`~repro.obs.TelemetrySnapshot` (metrics delta, span batch,
  event list) that the parent folds back with
  :func:`repro.obs.apply_telemetry` — counters add up, spans graft into
  the parent trace, events are relayed with their worker source tagged.

Start method: ``fork`` when the parent is single-threaded (cheapest, and
the pool's worker processes are forked before its manager thread starts),
``forkserver`` once any other thread is alive (forking a multi-threaded
parent is unsafe and deprecated in CPython 3.12+ — this covers
:func:`repro.serving.pool.run_sharded_async`, which calls in from an
executor thread).  Override with ``REPRO_MP_START_METHOD``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.exceptions import ConfigError
from repro.features import default_registry
from repro.obs import (
    EventLog,
    MetricsRegistry,
    TelemetrySnapshot,
    TraceCollector,
    TraceContext,
    capture_telemetry,
    clear_span_context,
    clear_stage_sink,
    disable_events,
    disable_metrics,
    disable_tracing,
    emit_event,
    enable_events,
    enable_metrics,
    enable_tracing,
    events_enabled,
    metrics_enabled,
    span,
    tracing_enabled,
)
from repro.resilience import Deadline, ItemOutcome, RetryPolicy
from repro.resilience.faultinject import FaultInjector, FaultSpec
from repro.serving.sharder import Shard

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summarizer import STMaker
    from repro.trajectory import RawTrajectory, SanitizerConfig

#: Supported ``executor=`` values for sharded serving.
EXECUTORS = ("thread", "process")


@dataclass(frozen=True, slots=True)
class ShardTask:
    """Everything one worker process needs to serve one shard.

    Deliberately model-free: the trained state travels as an artifact
    reference, not as pickled objects, so N tasks cost N small pickles
    plus one artifact load per worker process (the per-process cache in
    :mod:`repro.artifact` collapses repeats).
    """

    shard_id: int
    indices: tuple[int, ...]
    items: tuple["RawTrajectory", ...]
    artifact_path: str
    fingerprint: str
    k: int | None
    sanitize: bool
    sanitizer_config: "SanitizerConfig | None"
    strict: bool
    retry: RetryPolicy
    deadline_s: float | None
    sleeper: Callable[[float], None] | None  # None = time.sleep
    fault_specs: tuple[FaultSpec, ...] = ()
    fault_seed: int = 0
    want_metrics: bool = False
    want_spans: bool = False
    want_events: bool = False
    #: Per-item request contexts, parallel to ``indices``/``items``
    #: (empty when the parent minted none — pre-tracing callers).
    traces: tuple[TraceContext, ...] = ()
    #: Seconds the whole batch blocked in admission before sharding;
    #: copied onto every item's latency breakdown.
    admission_wait_s: float = 0.0


@dataclass(frozen=True, slots=True)
class ShardResult:
    """One served shard: ordered outcomes plus the worker's telemetry."""

    shard_id: int
    outcomes: tuple[ItemOutcome, ...]
    ok: int
    quarantined: int
    duration_ms: float
    items_per_s: float
    telemetry: TelemetrySnapshot | None = None


def _default_feature_keys() -> frozenset[str]:
    return frozenset(default_registry(include_speed_change=True).keys())


def check_process_compatible(
    stmaker: "STMaker", sleeper: Callable[[float], None]
) -> None:
    """Fail fast on state that cannot cross the process boundary.

    Two things cannot ship: custom feature extractors (code, not data —
    the artifact stores only their keys) and unpicklable sleepers
    (lambdas/closures).  Both raise :class:`~repro.exceptions.ConfigError`
    here, in the parent, instead of a cryptic pickling error from the
    pool's feeder thread.
    """
    custom = [
        key for key in stmaker.registry.keys()
        if key not in _default_feature_keys()
    ]
    if custom:
        raise ConfigError(
            f"executor='process' cannot ship custom feature definitions "
            f"{custom} to worker processes (they are code, not data); "
            "use executor='thread' for models with registry extensions"
        )
    if sleeper is not time.sleep:
        try:
            pickle.dumps(sleeper)
        except Exception as exc:
            raise ConfigError(
                "executor='process' requires a picklable sleeper "
                f"(module-level function), got {sleeper!r}: {exc}"
            ) from exc


def build_shard_tasks(
    stmaker: "STMaker",
    shards: Sequence[Shard],
    items: Sequence["RawTrajectory"],
    *,
    artifact_path: str,
    fingerprint: str,
    k: int | None,
    sanitize: bool,
    sanitizer_config: "SanitizerConfig | None",
    strict: bool,
    retry: RetryPolicy,
    deadline_s: float | None,
    sleeper: Callable[[float], None],
    traces: Sequence[TraceContext] | None = None,
    admission_wait_s: float = 0.0,
) -> list[ShardTask]:
    """Pack *shards* into self-contained :class:`ShardTask` s.

    The installed fault injector (if any) travels as its recipe —
    ``(specs, seed)`` — and every worker arms a fresh injector from it;
    see ``docs/SERVING.md`` for what that means for bounded
    (``times=N``) specs under process parallelism.
    """
    injector = stmaker.fault_injector
    fault_specs: tuple[FaultSpec, ...] = ()
    fault_seed = 0
    if injector is not None:
        fault_specs = injector.specs
        fault_seed = injector.seed
    want_metrics = metrics_enabled()
    want_spans = tracing_enabled()
    want_events = events_enabled()
    return [
        ShardTask(
            shard_id=shard.shard_id,
            indices=tuple(shard.indices),
            items=tuple(items[index] for index in shard.indices),
            artifact_path=artifact_path,
            fingerprint=fingerprint,
            k=k,
            sanitize=sanitize,
            sanitizer_config=sanitizer_config,
            strict=strict,
            retry=retry,
            deadline_s=deadline_s,
            sleeper=None if sleeper is time.sleep else sleeper,
            fault_specs=fault_specs,
            fault_seed=fault_seed,
            want_metrics=want_metrics,
            want_spans=want_spans,
            want_events=want_events,
            traces=(
                () if traces is None
                else tuple(traces[index] for index in shard.indices)
            ),
            admission_wait_s=admission_wait_s,
        )
        for shard in shards
    ]


def _reset_inherited_obs() -> None:
    """Drop obs state a ``fork``-started worker inherited from the parent.

    The parent's bus may carry subscribers with open file descriptors
    (JSONL sinks, the ops server's flight recorder): letting them run in
    the worker would interleave writes into the parent's files.  The
    sinks are dropped, not closed — the descriptors still belong to the
    parent process.  The forking thread's context-local state goes too:
    an inherited span stack carries parent-collector span ids that would
    corrupt the parent-side graft, and an inherited stage sink would
    account the worker's stages against a dead copy of a parent object.
    """
    disable_metrics()
    disable_tracing()
    disable_events()
    clear_span_context()
    clear_stage_sink()


def run_shard_in_process(task: ShardTask) -> ShardResult:
    """Worker-process entry point: serve one shard against the artifact.

    Mirrors the thread pool's ``run_shard`` telemetry contract — the item
    loop records into a fresh registry whose delta ships home in the
    result, ``shard_start``/``shard_end`` bracket the shard on the event
    stream, and the whole shard runs under a ``"shard"`` span — so the
    differential suite can hold process mode to the same merged-telemetry
    invariants as thread mode.  In ``strict`` mode the first item error
    propagates (pickled) to the parent, matching the serial contract.
    """
    from repro.artifact import cached_stmaker

    _reset_inherited_obs()
    registry = enable_metrics(MetricsRegistry()) if task.want_metrics else None
    collector = enable_tracing(TraceCollector()) if task.want_spans else None
    log: EventLog | None = None
    if task.want_events:
        log = EventLog()
        enable_events().subscribe(log)
    try:
        stmaker = cached_stmaker(task.artifact_path, task.fingerprint)
        if task.fault_specs:
            # A fresh injector per shard: deterministic per-shard seeding,
            # no cross-process counter to reconcile.
            stmaker = stmaker.with_config(stmaker.config)
            stmaker.fault_injector = FaultInjector(
                task.fault_specs, seed=task.fault_seed
            )
        sleeper = task.sleeper if task.sleeper is not None else time.sleep
        deadline = Deadline(task.deadline_s)
        emit_event("shard_start", shard_id=task.shard_id, items=len(task.items))
        started = time.perf_counter()
        outcomes: list[ItemOutcome] = []
        ok = quarantined = 0
        # The worker's "shard" span deliberately has no parent and no
        # trace id: it is process-local infrastructure.  The parent folds
        # it under the live batch span via apply_telemetry's graft;
        # per-item spans below carry their item's TraceContext instead.
        with span("shard", shard_id=task.shard_id, items=len(task.items)):
            for offset, (index, raw) in enumerate(zip(task.indices, task.items)):
                outcome = stmaker._summarize_item(
                    index, raw, k=task.k,
                    sanitize=task.sanitize,
                    sanitizer_config=task.sanitizer_config,
                    strict=task.strict, retry=task.retry,
                    deadline=deadline, sleeper=sleeper,
                    shard_id=task.shard_id,
                    trace=(
                        task.traces[offset] if offset < len(task.traces)
                        else None
                    ),
                    admission_wait_s=task.admission_wait_s,
                )
                outcomes.append(outcome)
                if outcome.summary is not None:
                    ok += 1
                else:
                    quarantined += 1
        duration_ms = (time.perf_counter() - started) * 1000.0
        rate = (
            len(task.items) / (duration_ms / 1000.0) if duration_ms > 0.0 else 0.0
        )
        emit_event(
            "shard_end", shard_id=task.shard_id, items=len(task.items),
            ok=ok, quarantined=quarantined,
            duration_ms=duration_ms, items_per_s=rate,
        )
        telemetry = None
        if registry is not None or collector is not None or log is not None:
            telemetry = capture_telemetry(
                registry=registry, collector=collector, events=log,
                source=f"shard-{task.shard_id}",
            )
        return ShardResult(
            shard_id=task.shard_id,
            outcomes=tuple(outcomes),
            ok=ok,
            quarantined=quarantined,
            duration_ms=duration_ms,
            items_per_s=rate,
            telemetry=telemetry,
        )
    finally:
        _reset_inherited_obs()


def mp_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context serving should launch workers with."""
    method = os.environ.get("REPRO_MP_START_METHOD")
    if not method:
        if sys.platform == "win32":  # pragma: no cover - not our CI
            method = "spawn"
        elif threading.active_count() > 1:
            method = "forkserver"
        else:
            method = "fork"
    return multiprocessing.get_context(method)
