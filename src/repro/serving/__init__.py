"""Sharded parallel batch serving for ``STMaker.summarize_many``.

The paper's pipeline is embarrassingly parallel across trajectories: once
the landmark store and historical feature map are trained, every summary
is an independent pure function of its input.  This package exploits that
without changing semantics:

* :mod:`~repro.serving.sharder` — partition a batch into shards
  (balanced / round-robin / stable key-hashed);
* :mod:`~repro.serving.pool` — run shards on a worker pool with per-shard
  deadline budgets, shared retry policy, and live progress
  (:func:`run_sharded`, plus the ``await``-able :func:`run_sharded_async`);
* :mod:`~repro.serving.executor` — the ``executor="process"`` backend:
  shards ship to :class:`~concurrent.futures.ProcessPoolExecutor` workers
  as :class:`ShardTask` s carrying a city-model **artifact reference**
  (:mod:`repro.artifact`) instead of the model itself, and come back as
  :class:`ShardResult` s carrying their telemetry snapshot;
* :mod:`~repro.serving.ordering` — reassemble per-item outcomes into
  input order regardless of completion order (:func:`reassemble`).

The contract — **parallel ≡ serial** — is pinned by the differential and
property suites (``tests/test_serving_*.py``): ``summarize_many(workers=4)``
returns element-wise identical summaries, degradation reports, quarantine
entries and sanitization reports to ``workers=1``, including under
deterministic fault injection — for the thread executor *and* the process
executor.  See ``docs/SERVING.md``.
"""

from repro.serving.executor import (
    EXECUTORS,
    ShardResult,
    ShardTask,
    run_shard_in_process,
)
from repro.serving.ordering import reassemble
from repro.serving.pool import run_sharded, run_sharded_async
from repro.serving.sharder import SHARD_MODES, Shard, plan_shards, stable_key_hash

__all__ = [
    "EXECUTORS",
    "SHARD_MODES",
    "Shard",
    "ShardResult",
    "ShardTask",
    "plan_shards",
    "run_shard_in_process",
    "run_sharded",
    "run_sharded_async",
    "reassemble",
    "stable_key_hash",
]
