"""Sharded parallel batch serving for ``STMaker.summarize_many``.

The paper's pipeline is embarrassingly parallel across trajectories: once
the landmark store and historical feature map are trained, every summary
is an independent pure function of its input.  This package exploits that
without changing semantics:

* :mod:`~repro.serving.sharder` — partition a batch into shards
  (balanced / round-robin / stable key-hashed);
* :mod:`~repro.serving.pool` — run shards on a thread pool with per-shard
  deadline budgets, shared retry policy, and live progress
  (:func:`run_sharded`, plus the ``await``-able :func:`run_sharded_async`);
* :mod:`~repro.serving.ordering` — reassemble per-item outcomes into
  input order regardless of completion order (:func:`reassemble`).

The contract — **parallel ≡ serial** — is pinned by the differential and
property suites (``tests/test_serving_*.py``): ``summarize_many(workers=4)``
returns element-wise identical summaries, degradation reports, quarantine
entries and sanitization reports to ``workers=1``, including under
deterministic fault injection.  See ``docs/SERVING.md``.
"""

from repro.serving.ordering import reassemble
from repro.serving.pool import run_sharded, run_sharded_async
from repro.serving.sharder import SHARD_MODES, Shard, plan_shards, stable_key_hash

__all__ = [
    "SHARD_MODES",
    "Shard",
    "plan_shards",
    "stable_key_hash",
    "reassemble",
    "run_sharded",
    "run_sharded_async",
]
