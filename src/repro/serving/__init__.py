"""Sharded parallel batch serving for ``STMaker.summarize_many``.

The paper's pipeline is embarrassingly parallel across trajectories: once
the landmark store and historical feature map are trained, every summary
is an independent pure function of its input.  This package exploits that
without changing semantics:

* :mod:`~repro.serving.sharder` — partition a batch into shards
  (balanced / round-robin / stable key-hashed);
* :mod:`~repro.serving.pool` — run shards on a worker pool with per-shard
  deadline budgets, shared retry policy, and live progress
  (:func:`run_sharded`, plus the ``await``-able :func:`run_sharded_async`);
* :mod:`~repro.serving.executor` — the ``executor="process"`` backend:
  shards ship to :class:`~concurrent.futures.ProcessPoolExecutor` workers
  as :class:`ShardTask` s carrying a city-model **artifact reference**
  (:mod:`repro.artifact`) instead of the model itself, and come back as
  :class:`ShardResult` s carrying their telemetry snapshot;
* :mod:`~repro.serving.supervisor` — crash containment for the process
  backend: worker death is retried, bisected down to the poison item,
  and quarantined with a typed
  :class:`~repro.exceptions.WorkerCrashError` under a bounded
  :class:`ShardRetryPolicy`, with progress-based hang detection —
  ``BrokenProcessPool`` never reaches the caller;
* :mod:`~repro.serving.breaker` — per-name circuit breakers
  (closed → open → half-open) that route shards to an in-parent
  degraded path during crash storms (:func:`get_breaker`);
* :mod:`~repro.serving.admission` — bounded intake with typed
  :class:`~repro.exceptions.OverloadError` shedding or degrade-to-cheap-``k``,
  per-tenant budgets, and priority bypass;
* :mod:`~repro.serving.ordering` — reassemble per-item outcomes into
  input order regardless of completion order (:func:`reassemble`).

The contract — **parallel ≡ serial** — is pinned by the differential and
property suites (``tests/test_serving_*.py``): ``summarize_many(workers=4)``
returns element-wise identical summaries, degradation reports, quarantine
entries and sanitization reports to ``workers=1``, including under
deterministic fault injection — for the thread executor *and* the process
executor.  The chaos suite (``tests/test_serving_chaos.py``) extends the
contract to crash-grade faults: the same items end up quarantined, for
the same typed reason.  See ``docs/SERVING.md`` and ``docs/ROBUSTNESS.md``.
"""

from repro.serving.admission import (
    SHED_POLICIES,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionTicket,
)
from repro.serving.breaker import (
    BREAKER_STATES,
    CircuitBreaker,
    all_breakers,
    get_breaker,
    reset_breakers,
)
from repro.serving.executor import (
    EXECUTORS,
    ShardResult,
    ShardTask,
    run_shard_in_process,
)
from repro.serving.ordering import reassemble
from repro.serving.pool import run_sharded, run_sharded_async
from repro.serving.sharder import SHARD_MODES, Shard, plan_shards, stable_key_hash
from repro.serving.supervisor import (
    ShardRetryPolicy,
    run_shard_local,
    supervise_process_shards,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionTicket",
    "BREAKER_STATES",
    "CircuitBreaker",
    "EXECUTORS",
    "SHARD_MODES",
    "SHED_POLICIES",
    "Shard",
    "ShardResult",
    "ShardRetryPolicy",
    "ShardTask",
    "all_breakers",
    "get_breaker",
    "plan_shards",
    "reset_breakers",
    "run_shard_in_process",
    "run_shard_local",
    "run_sharded",
    "run_sharded_async",
    "reassemble",
    "stable_key_hash",
    "supervise_process_shards",
]
