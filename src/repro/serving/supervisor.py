"""Shard supervision: crash containment for the process executor.

A :class:`~concurrent.futures.ProcessPoolExecutor` has exactly one
failure story: when any worker process dies (segfault, OOM kill,
``os._exit`` from native code), the pool marks itself broken and fails
*every* in-flight future with ``BrokenProcessPool`` — the whole batch
aborts and every healthy shard's work is lost.  That is the opposite of
the per-item isolation :meth:`repro.core.STMaker.summarize_many`
promises.  This module puts a supervisor between :mod:`repro.serving.pool`
and the process pool so that worker death is a *contained, attributed,
bounded* event:

1. **Windowed submission** — at most ``max_in_flight`` shards (default:
   2× workers) live inside the pool at once, so one crash dooms a
   bounded set of futures, not the entire batch.
2. **Attribution** — a crash is charged to a shard only when the
   attribution is *exact* (exactly one shard was in flight).  With
   several in flight the pool cannot say which one killed the worker,
   so all of them are requeued uncharged and the supervisor switches to
   **serialized recovery** (one shard in flight) where every subsequent
   crash is exactly attributable.  This can never quarantine a healthy
   shard on circumstantial evidence.
3. **Retry → bisect → quarantine** — a charged shard is retried on a
   fresh pool under the bounded :class:`ShardRetryPolicy` (attempts,
   deterministic geometric backoff; each run gets the full per-shard
   deadline as always).  A shard that keeps killing workers is
   **bisected**: its halves re-enter the queue with a fresh attempt
   budget, so healthy items escape and the poison converges to a
   single-item shard in ``log2(len(shard))`` rounds.  A single-item
   shard that still crashes is the proven poison: the supervisor
   synthesizes a quarantined outcome with a typed
   :class:`~repro.exceptions.WorkerCrashError` and the batch moves on.
4. **Hang detection** — progress-based: when no in-flight shard
   completes within the hang window (``deadline_s`` + grace, or the
   policy's explicit ``hang_timeout_s``), the workers are killed and
   the in-flight shards handled exactly like a crash.  A hang is a
   crash that wastes more time; without this, one stuck worker parks
   the batch forever.  With no deadline and no explicit timeout the
   supervisor waits indefinitely (the pre-supervision contract).
5. **Circuit breaking** — an optional
   :class:`~repro.serving.breaker.CircuitBreaker` records every shard
   outcome; once tripped, subsequent shards bypass the pool and run
   **in-parent** (the degraded path: same item semantics, no process
   isolation) until a half-open probe succeeds.

Everything reports through the standard obs surface: ``shard_retry``
events (actions ``retry``/``bisect``/``requeue``/``quarantine``), the
``serving.crashes`` / ``serving.retried_shards`` / ``serving.bisected_shards``
counters, and the run report's "Failure containment" section.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.exceptions import ConfigError, WorkerCrashError
from repro.obs import emit_event, events_enabled, metrics, span
from repro.resilience import (
    Deadline,
    ItemOutcome,
    LatencyBreakdown,
    QuarantineEntry,
)
from repro.serving.executor import (
    ShardResult,
    ShardTask,
    mp_context,
    run_shard_in_process,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summarizer import STMaker
    from repro.serving.breaker import CircuitBreaker


@dataclass(frozen=True, slots=True)
class ShardRetryPolicy:
    """Bounds on how hard the supervisor fights for a lost shard.

    ``max_retries`` is per *shard identity*: a bisected half starts with
    a fresh attempt budget (it is new evidence — the crash may have been
    the other half's fault).  The backoff schedule is the same
    deterministic geometric progression as
    :class:`~repro.resilience.RetryPolicy`.  ``hang_timeout_s`` overrides
    the progress window used for hang detection; when ``None`` the window
    is ``deadline_s + hang_grace_s`` (and unbounded when there is no
    deadline either — hang detection needs *some* notion of "too long").
    ``hang_grace_s`` must comfortably exceed the slowest single item:
    the per-shard deadline bounds when the last item may *start*, the
    grace covers how long it may then run.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    hang_timeout_s: float | None = None
    hang_grace_s: float = 30.0
    #: How long to let a broken pool's survivor futures settle so work
    #: that finished before the crash is preserved, not re-run.
    settle_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0.0:
            raise ConfigError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0.0:
            raise ConfigError(
                f"hang_timeout_s must be > 0, got {self.hang_timeout_s}"
            )
        if self.hang_grace_s < 0.0:
            raise ConfigError(f"hang_grace_s must be >= 0, got {self.hang_grace_s}")

    def delay_s(self, attempt: int) -> float:
        """Backoff before re-running a shard charged *attempt* times (1-based)."""
        if attempt < 1:
            raise ConfigError(f"attempts are 1-based, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)

    def hang_window_s(self, deadline_s: float | None) -> float | None:
        """The no-progress window before in-flight shards count as hung."""
        if self.hang_timeout_s is not None:
            return self.hang_timeout_s
        if deadline_s is not None:
            return deadline_s + self.hang_grace_s
        return None


class _Unit:
    """One supervised shard: its task plus how often it was charged."""

    __slots__ = ("task", "attempts")

    def __init__(self, task: ShardTask, attempts: int = 0) -> None:
        self.task = task
        self.attempts = attempts


def run_shard_local(stmaker: "STMaker", task: ShardTask) -> ShardResult:
    """Serve one shard in the parent process (the degraded path).

    Same items, same ``STMaker._summarize_item`` semantics, no process
    isolation: telemetry records into the live parent registry (so the
    returned result carries ``telemetry=None`` — nothing to merge), and
    crash-grade faults raise :class:`WorkerCrashError` instead of dying,
    which quarantines the poison item exactly as the serial path would.
    """
    sleeper = task.sleeper if task.sleeper is not None else time.sleep
    deadline = Deadline(task.deadline_s)
    emit_event(
        "shard_start", shard_id=task.shard_id, items=len(task.items),
        degraded=True,
    )
    started = time.perf_counter()
    outcomes: list[ItemOutcome] = []
    ok = quarantined = 0
    with span("shard", shard_id=task.shard_id, items=len(task.items), degraded=True):
        for offset, (index, raw) in enumerate(zip(task.indices, task.items)):
            outcome = stmaker._summarize_item(
                index, raw, k=task.k,
                sanitize=task.sanitize, sanitizer_config=task.sanitizer_config,
                strict=task.strict, retry=task.retry,
                deadline=deadline, sleeper=sleeper, shard_id=task.shard_id,
                trace=(
                    task.traces[offset] if offset < len(task.traces) else None
                ),
                admission_wait_s=task.admission_wait_s,
            )
            outcomes.append(outcome)
            if outcome.summary is not None:
                ok += 1
            else:
                quarantined += 1
    duration_ms = (time.perf_counter() - started) * 1000.0
    rate = len(task.items) / (duration_ms / 1000.0) if duration_ms > 0.0 else 0.0
    emit_event(
        "shard_end", shard_id=task.shard_id, items=len(task.items),
        ok=ok, quarantined=quarantined,
        duration_ms=duration_ms, items_per_s=rate, degraded=True,
    )
    return ShardResult(
        shard_id=task.shard_id, outcomes=tuple(outcomes),
        ok=ok, quarantined=quarantined,
        duration_ms=duration_ms, items_per_s=rate, telemetry=None,
    )


def supervise_process_shards(
    tasks: Sequence[ShardTask],
    *,
    workers: int,
    policy: ShardRetryPolicy,
    fold: Callable[[ShardResult], None],
    local_runner: Callable[[ShardTask], ShardResult],
    breaker: "CircuitBreaker | None" = None,
    max_in_flight: int | None = None,
    deadline_s: float | None = None,
    sleeper: Callable[[float], None] = time.sleep,
    strict: bool = False,
) -> None:
    """Run *tasks* on supervised worker processes; deliver results via *fold*.

    Completes every task exactly once — as a worker result, a degraded
    in-parent result (breaker open), or a synthesized crash-quarantine
    result — no matter how many workers die on the way.  Worker
    exceptions that are *not* pool breakage (strict-mode item errors,
    genuine bugs) propagate to the caller unchanged.  See the module
    docstring for the containment model.
    """
    queue: deque[_Unit] = deque(_Unit(task) for task in tasks)
    next_shard_id = max((t.shard_id for t in tasks), default=-1) + 1
    pending: dict[Future, _Unit] = {}
    serialize = False
    m = metrics()
    hang_window = policy.hang_window_s(deadline_s)
    pool = _new_pool(workers)

    def charge(unit: _Unit, reason: str) -> None:
        """The retry → bisect → quarantine ladder for an attributed loss."""
        nonlocal next_shard_id
        unit.attempts += 1
        shard_id = unit.task.shard_id
        if unit.attempts <= policy.max_retries:
            m.counter("serving.retried_shards").inc()
            emit_event(
                "shard_retry", shard_id=shard_id, action="retry",
                attempt=unit.attempts, reason=reason,
                items=len(unit.task.items),
            )
            delay = policy.delay_s(unit.attempts)
            if delay > 0.0:
                sleeper(delay)
            queue.appendleft(unit)
            return
        if len(unit.task.items) > 1:
            mid = len(unit.task.items) // 2
            halves = []
            for lo, hi in ((0, mid), (mid, len(unit.task.items))):
                halves.append(_Unit(dataclasses.replace(
                    unit.task,
                    shard_id=next_shard_id,
                    indices=unit.task.indices[lo:hi],
                    items=unit.task.items[lo:hi],
                    traces=unit.task.traces[lo:hi],
                )))
                next_shard_id += 1
            m.counter("serving.bisected_shards").inc()
            emit_event(
                "shard_retry", shard_id=shard_id, action="bisect",
                attempt=unit.attempts, reason=reason,
                halves=[h.task.shard_id for h in halves],
            )
            for half in reversed(halves):
                queue.appendleft(half)
            return
        # A single-item shard that exhausted its retries: proven poison.
        message = (
            f"worker process died ({reason}) on every attempt while item "
            f"{unit.task.indices[0]} was the only one in flight; "
            f"isolated after {unit.attempts} attempt(s)"
        )
        if strict:
            raise WorkerCrashError(message)
        emit_event(
            "shard_retry", shard_id=shard_id, action="quarantine",
            attempt=unit.attempts, reason=reason,
        )
        fold(_synthesize_crash_result(unit, message))

    def handle_incident(lost: list[_Unit], reason: str) -> None:
        """Classify one worker-death event over the *lost* in-flight units."""
        nonlocal serialize
        m.counter("serving.crashes").inc()
        if breaker is not None:
            breaker.record_failure()
        if len(lost) == 1:
            charge(lost[0], reason)
            return
        # Ambiguous: the pool cannot say which shard killed the worker.
        # Requeue everything uncharged and recover serialized, where every
        # further loss is exactly attributable.
        serialize = True
        for unit in reversed(lost):
            emit_event(
                "shard_retry", shard_id=unit.task.shard_id, action="requeue",
                reason=reason, charged=False,
            )
            queue.appendleft(unit)

    def drain_settled(reason: str) -> list[_Unit]:
        """Fold what finished before the pool died; return the lost units.

        Each pending future is consulted exactly once, so a shard can
        never be both folded and requeued (which would duplicate items
        at reassembly).
        """
        lost: list[_Unit] = []
        for future, unit in pending.items():
            sr = None
            if future.done() and not future.cancelled():
                try:
                    sr = future.result(timeout=0)
                except BaseException:
                    sr = None
            if sr is not None:
                if breaker is not None:
                    breaker.record_success()
                fold(sr)
            else:
                lost.append(unit)
        pending.clear()
        return lost

    try:
        while queue or pending:
            limit = 1 if serialize else (max_in_flight or workers * 2)
            while queue and len(pending) < limit:
                unit = queue.popleft()
                if breaker is not None and not breaker.allow():
                    m.counter("serving.breaker.denied_shards").inc()
                    fold(local_runner(unit.task))
                    continue
                pending[pool.submit(run_shard_in_process, unit.task)] = unit
            if not pending:
                continue
            done, _ = wait(
                list(pending), timeout=hang_window, return_when=FIRST_COMPLETED
            )
            if not done:
                # No shard made progress inside the hang window: kill the
                # stuck workers and treat the in-flight shards as lost.
                lost = drain_settled("hang")
                _kill_pool(pool)
                pool = _new_pool(workers)
                handle_incident(lost, "hang")
                continue
            broken = False
            lost = []
            for future in done:
                unit = pending.pop(future)
                try:
                    sr = future.result()
                except BrokenExecutor:
                    broken = True
                    lost.append(unit)
                except Exception as exc:
                    # Not pool breakage: a strict-mode item error or a real
                    # bug.  Containment does not swallow those — but the
                    # caller's contract is "first failure in shard order",
                    # so let the other in-flight shards settle and raise
                    # the lowest-shard-id failure among them.
                    _raise_first_by_shard_order(exc, unit, pending, pool)
                else:
                    if breaker is not None:
                        breaker.record_success()
                    fold(sr)
            if broken:
                # The pool is broken; its remaining futures settle fast
                # (the executor fails them all).  Let them, keep finished
                # work, replace the pool, and attribute the loss.
                if pending:
                    wait(list(pending), timeout=policy.settle_timeout_s)
                lost.extend(drain_settled("crash"))
                pool.shutdown(wait=False, cancel_futures=True)
                pool = _new_pool(workers)
                handle_incident(lost, "crash")
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _raise_first_by_shard_order(
    exc: Exception,
    unit: _Unit,
    pending: dict[Future, _Unit],
    pool: ProcessPoolExecutor,
) -> None:
    """Abort with the lowest-shard-id worker exception, as serial would.

    Strict mode promises the *first* failure in input order.  Shards
    complete in any order under the supervisor, so when one raises we
    briefly let the other in-flight shards settle and pick the failure
    with the smallest shard id (input order and shard order coincide for
    the contiguous shard modes).  ``BrokenExecutor`` losses during the
    drain are ignored — we are aborting anyway.
    """
    failures: list[tuple[int, Exception]] = [(unit.task.shard_id, exc)]
    if pending:
        wait(list(pending), timeout=30.0)
        for future, other in pending.items():
            if not future.done() or future.cancelled():
                continue
            try:
                future.result(timeout=0)
            except BrokenExecutor:
                continue
            except Exception as other_exc:
                failures.append((other.task.shard_id, other_exc))
    pool.shutdown(wait=False, cancel_futures=True)
    raise min(failures, key=lambda pair: pair[0])[1]


def _synthesize_crash_result(unit: _Unit, message: str) -> ShardResult:
    """A quarantined :class:`ShardResult` for a proven-poison shard.

    The worker that could have reported telemetry for these items died
    with them, so the batch counters (``resilience.batch.items`` /
    ``.quarantined``) and the ``quarantine`` event are recorded here,
    parent-side — keeping the batch totals identical to a serial run
    that quarantined the same items.
    """
    m = metrics()
    outcomes = []
    for offset, (index, raw) in enumerate(zip(unit.task.indices, unit.task.items)):
        m.counter("resilience.batch.items").inc()
        m.counter("resilience.batch.quarantined").inc()
        emit_event(
            "quarantine", trajectory_id=raw.trajectory_id,
            index=index, error_type="WorkerCrashError",
            attempts=unit.attempts, error=message,
        )
        trace = unit.task.traces[offset] if offset < len(unit.task.traces) else None
        # The worker died with the item's timings; what survives is the
        # request identity, the admission wait, and how many times the
        # supervisor charged the shard.
        breakdown = LatencyBreakdown(
            trace_id=None if trace is None else trace.trace_id,
            admission_wait_s=unit.task.admission_wait_s,
            attempts=unit.attempts,
        )
        if events_enabled():
            emit_event(
                "item_end", trajectory_id=raw.trajectory_id, index=index,
                ok=False, duration_ms=0.0, attempts=unit.attempts,
                trace_id=breakdown.trace_id, breakdown=breakdown.to_dict(),
            )
        outcomes.append(ItemOutcome(index, None, QuarantineEntry(
            index, raw.trajectory_id, "WorkerCrashError", message,
            unit.attempts, shard_id=unit.task.shard_id, latency=breakdown,
        ), None, latency=breakdown))
    return ShardResult(
        shard_id=unit.task.shard_id, outcomes=tuple(outcomes),
        ok=0, quarantined=len(outcomes),
        duration_ms=0.0, items_per_s=0.0, telemetry=None,
    )


def _new_pool(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, mp_context=mp_context())


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool whose workers stopped making progress.

    Reaches into the executor's live worker table (no public API exposes
    it) to SIGTERM the stuck processes before shutdown; shutdown alone
    would *join* them and hang the parent right behind the worker.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        with contextlib.suppress(Exception):
            process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
