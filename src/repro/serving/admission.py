"""Admission control and load shedding for the batch-serving intake.

Unbounded intake is how overload turns into an outage: every queued item
holds memory, every in-flight shard holds a worker, and a service that
accepts everything degrades for *everyone* at once.  This module bounds
the intake and makes the overflow behaviour explicit:

* :class:`AdmissionPolicy` — the declarative budget: how many items may
  be queued at once, how many shards may be in flight inside the pool,
  and what to do with work over budget (``shed="reject"`` raises a typed
  :class:`~repro.exceptions.OverloadError`; ``shed="degrade"`` accepts
  the batch but serves it at the cheap ``degrade_k`` partition count).
  A stateless policy bounds each batch by itself.
* :class:`AdmissionController` — the stateful front door for a process
  serving many concurrent batches: it tracks live queued-item counts,
  globally and per tenant, and admits against the *combined* load.
  Releasing happens through the returned ticket, so a crashed batch
  cannot leak budget.

Both produce an :class:`AdmissionTicket` whose
:class:`AdmissionDecision` tells the caller what was granted; shed and
degrade decisions are reported through ``load_shed`` events and the
``serving.shed_items`` counter so overload is visible on the same
dashboards as crashes and retries.

Priority hook: requests with ``priority >= policy.bypass_priority``
skip the budget checks entirely — the escape hatch for health probes
and operator traffic during an incident.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import ConfigError, OverloadError
from repro.obs import emit_event, metrics

#: Supported ``shed=`` policies for work over budget.
SHED_POLICIES = ("reject", "degrade")


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """What the intake granted (rejections raise, they are not returned)."""

    #: ``"accept"``, ``"degrade"``, or ``"bypass"`` (priority skip).
    action: str
    #: Partition count the batch must be served at (``None`` = as asked).
    k_override: int | None = None
    reason: str = ""


class AdmissionTicket:
    """One admitted batch's hold on the intake budget.

    Stateless policies hand out tickets that release nothing; the
    controller's tickets return the queued-item budget on
    :meth:`release` (idempotent, and callable from ``finally``).
    """

    __slots__ = ("decision", "_release", "_released")

    def __init__(self, decision: AdmissionDecision, release=None) -> None:
        self.decision = decision
        self._release = release
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        if self._release is not None:
            self._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """Declarative intake budget (see module docstring).

    ``max_queued_items`` bounds how many items one admission may bring
    in; ``max_in_flight_shards`` bounds the serving pool's submission
    window (how many shards are materialized inside the executor at
    once); ``None`` means unbounded.  ``degrade_k`` is the partition
    count used for over-budget batches under ``shed="degrade"`` — the
    cheapest useful summary (``k=1``: one partition, one sentence) by
    default.
    """

    max_queued_items: int | None = None
    max_in_flight_shards: int | None = None
    shed: str = "reject"
    degrade_k: int = 1
    bypass_priority: int | None = None

    def __post_init__(self) -> None:
        if self.shed not in SHED_POLICIES:
            raise ConfigError(
                f"unknown shed policy {self.shed!r}; expected one of {SHED_POLICIES}"
            )
        if self.max_queued_items is not None and self.max_queued_items < 1:
            raise ConfigError(
                f"max_queued_items must be >= 1, got {self.max_queued_items}"
            )
        if self.max_in_flight_shards is not None and self.max_in_flight_shards < 1:
            raise ConfigError(
                f"max_in_flight_shards must be >= 1, got {self.max_in_flight_shards}"
            )
        if self.degrade_k < 1:
            raise ConfigError(f"degrade_k must be >= 1, got {self.degrade_k}")

    def admit(
        self, n_items: int, *, tenant: str | None = None, priority: int = 0
    ) -> AdmissionTicket:
        """Admit a batch of *n_items* against this (stateless) budget.

        Raises :class:`OverloadError` when the batch is over
        ``max_queued_items`` and ``shed="reject"``; returns a degrade
        ticket (with ``k_override``) under ``shed="degrade"``.
        """
        decision = _decide(
            self, n_items, queued_after=n_items,
            budget=self.max_queued_items, scope="batch",
            tenant=tenant, priority=priority,
        )
        return AdmissionTicket(decision)


class AdmissionController:
    """Stateful intake for many concurrent batches (see module docstring).

    *tenant_budgets* maps tenant name → max queued items for that tenant
    (checked on top of the policy's global ``max_queued_items``).
    Thread-safe; budget is held from :meth:`admit` until the ticket's
    :meth:`~AdmissionTicket.release`.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        *,
        tenant_budgets: dict[str, int] | None = None,
    ) -> None:
        self.policy = policy
        self.tenant_budgets = dict(tenant_budgets or {})
        self._lock = threading.Lock()
        self._queued = 0
        self._queued_by_tenant: dict[str, int] = {}

    @property
    def max_in_flight_shards(self) -> int | None:
        return self.policy.max_in_flight_shards

    @property
    def queued_items(self) -> int:
        with self._lock:
            return self._queued

    def queued_for(self, tenant: str) -> int:
        with self._lock:
            return self._queued_by_tenant.get(tenant, 0)

    def admit(
        self, n_items: int, *, tenant: str | None = None, priority: int = 0
    ) -> AdmissionTicket:
        """Admit *n_items* against the live global and per-tenant load."""
        with self._lock:
            tenant_budget = (
                self.tenant_budgets.get(tenant) if tenant is not None else None
            )
            if tenant_budget is not None:
                tenant_after = self._queued_by_tenant.get(tenant, 0) + n_items
                decision = _decide(
                    self.policy, n_items, queued_after=tenant_after,
                    budget=tenant_budget, scope=f"tenant {tenant!r}",
                    tenant=tenant, priority=priority,
                )
                if decision.action != "accept":
                    # Bypass/degrade short-circuits the global check: the
                    # verdict is already the most permissive/most degraded.
                    self._charge(n_items, tenant)
                    return AdmissionTicket(
                        decision, release=lambda: self._release(n_items, tenant)
                    )
            decision = _decide(
                self.policy, n_items, queued_after=self._queued + n_items,
                budget=self.policy.max_queued_items, scope="global",
                tenant=tenant, priority=priority,
            )
            self._charge(n_items, tenant)
            return AdmissionTicket(
                decision, release=lambda: self._release(n_items, tenant)
            )

    def _charge(self, n_items: int, tenant: str | None) -> None:
        self._queued += n_items
        if tenant is not None:
            self._queued_by_tenant[tenant] = (
                self._queued_by_tenant.get(tenant, 0) + n_items
            )
        metrics().gauge("serving.admission.queued_items").set(float(self._queued))

    def _release(self, n_items: int, tenant: str | None) -> None:
        with self._lock:
            self._queued = max(0, self._queued - n_items)
            if tenant is not None:
                left = self._queued_by_tenant.get(tenant, 0) - n_items
                if left > 0:
                    self._queued_by_tenant[tenant] = left
                else:
                    self._queued_by_tenant.pop(tenant, None)
            metrics().gauge("serving.admission.queued_items").set(
                float(self._queued)
            )


def _decide(
    policy: AdmissionPolicy,
    n_items: int,
    *,
    queued_after: int,
    budget: int | None,
    scope: str,
    tenant: str | None,
    priority: int,
) -> AdmissionDecision:
    """One budget check: bypass, accept, degrade, or raise OverloadError."""
    if (
        policy.bypass_priority is not None
        and priority >= policy.bypass_priority
    ):
        return AdmissionDecision("bypass", reason=f"priority {priority} bypass")
    if budget is None or queued_after <= budget:
        return AdmissionDecision("accept")
    reason = (
        f"{scope} queue would hold {queued_after} items, "
        f"budget is {budget}"
    )
    if policy.shed == "degrade":
        emit_event(
            "load_shed", action="degrade", items=n_items,
            tenant=tenant, reason=reason, k=policy.degrade_k,
        )
        metrics().counter("serving.degraded_admissions").inc()
        return AdmissionDecision(
            "degrade", k_override=policy.degrade_k, reason=reason
        )
    emit_event(
        "load_shed", action="reject", items=n_items,
        tenant=tenant, reason=reason,
    )
    metrics().counter("serving.shed_items").inc(n_items)
    raise OverloadError(f"admission rejected {n_items} items: {reason}")
