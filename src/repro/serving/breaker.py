"""Circuit breakers for the serving layer.

A breaker protects a failure-prone execution path (in serving: the
process pool of one executor) from *storms* — when most recent attempts
fail, continuing to hammer the path wastes the retry budget, churns
worker processes, and delays the batch far more than simply routing
around it.  The classic three-state machine:

* **closed** — normal operation; outcomes are recorded into a sliding
  window, and when the window holds at least ``min_volume`` outcomes
  with a failure rate at or above ``failure_threshold``, the breaker
  trips open;
* **open** — :meth:`CircuitBreaker.allow` answers ``False`` (callers
  take their degraded path) until ``cooldown_s`` has elapsed on the
  monotonic clock;
* **half-open** — after the cooldown, exactly one probe is let through;
  its success closes the breaker (window cleared, fresh start), its
  failure re-opens it for another cooldown.

Everything is deterministic and injectable: the clock is a constructor
argument, there is no jitter, and state transitions are reported through
the standard obs surface — ``breaker_open``/``breaker_close`` events,
a ``serving.breaker.<name>.state`` gauge (0 closed, 1 half-open,
2 open) and a ``serving.breaker.trips`` counter — so chaos tests and
run reports see exactly what production dashboards see.

Breakers are shared state by nature (many batches, one pool health),
so the module keeps a process-wide registry: :func:`get_breaker`
returns the breaker for a name, creating it on first use, and
:func:`reset_breakers` clears the registry (tests).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.exceptions import ConfigError
from repro.obs import emit_event, metrics

#: The three breaker states, in ``serving.breaker.<name>.state`` gauge order.
BREAKER_STATES = ("closed", "half_open", "open")

CLOSED, HALF_OPEN, OPEN = BREAKER_STATES


class CircuitBreaker:
    """A deterministic closed → open → half-open circuit breaker.

    Thread-safe: serving pools record outcomes from whichever thread
    drains shard futures, and ops surfaces may snapshot concurrently.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: float = 0.5,
        min_volume: int = 4,
        window: int = 16,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_volume < 1:
            raise ConfigError(f"min_volume must be >= 1, got {min_volume}")
        if window < min_volume:
            raise ConfigError(
                f"window ({window}) must be >= min_volume ({min_volume})"
            )
        if cooldown_s < 0.0:
            raise ConfigError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.min_volume = min_volume
        self.window = window
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._trips = 0
        self._set_state_gauge()

    # -- queries ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when cooldown is up."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def failure_rate(self) -> float:
        """Failure fraction of the sliding window (0.0 when empty)."""
        with self._lock:
            return self._failure_rate()

    def snapshot(self) -> dict[str, object]:
        """State for ops surfaces and the run report."""
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "failure_rate": self._failure_rate(),
                "volume": len(self._outcomes),
                "trips": self._trips,
            }

    # -- the contract: allow / record ----------------------------------------------

    def allow(self) -> bool:
        """May the next unit of work use the protected path?

        ``False`` means "take your degraded path"; the caller must still
        report that degraded work's outcome **not** to this breaker (the
        degraded path's health is not the protected path's health).  In
        half-open state exactly one caller gets ``True`` (the probe)
        until its outcome is recorded.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_in_flight = False
                self._transition(CLOSED)
                self._outcomes.clear()
                emit_event("breaker_close", breaker=self.name)
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: the path is still broken.
                self._probe_in_flight = False
                self._trip()
                return
            self._outcomes.append(True)
            if (
                self._state == CLOSED
                and len(self._outcomes) >= self.min_volume
                and self._failure_rate() >= self.failure_threshold
            ):
                self._trip()

    def reset(self) -> None:
        """Back to a pristine closed breaker (tests, manual ops action)."""
        with self._lock:
            self._outcomes.clear()
            self._probe_in_flight = False
            self._transition(CLOSED)

    # -- internals (call with the lock held) -----------------------------------------

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(HALF_OPEN)
            self._probe_in_flight = False

    def _trip(self) -> None:
        self._trips += 1
        self._opened_at = self._clock()
        rate = self._failure_rate()
        self._transition(OPEN)
        metrics().counter("serving.breaker.trips").inc()
        emit_event(
            "breaker_open", breaker=self.name,
            failure_rate=rate, volume=len(self._outcomes),
            cooldown_s=self.cooldown_s,
        )

    def _transition(self, state: str) -> None:
        self._state = state
        self._set_state_gauge()

    def _set_state_gauge(self) -> None:
        metrics().gauge(f"serving.breaker.{self.name}.state").set(
            float(BREAKER_STATES.index(self._state))
        )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self._state!r}, "
            f"failure_rate={self._failure_rate():.2f}, trips={self._trips})"
        )


# -- process-wide registry ------------------------------------------------------------

_registry: dict[str, CircuitBreaker] = {}
_registry_lock = threading.Lock()


def get_breaker(name: str, **kwargs: object) -> CircuitBreaker:
    """The process-wide breaker for *name*, created on first use.

    Keyword arguments configure the breaker **only** on creation; a later
    call with different settings returns the existing breaker unchanged
    (one name, one health record).
    """
    with _registry_lock:
        breaker = _registry.get(name)
        if breaker is None:
            breaker = CircuitBreaker(name, **kwargs)  # type: ignore[arg-type]
            _registry[name] = breaker
        return breaker


def all_breakers() -> tuple[CircuitBreaker, ...]:
    """Every registered breaker (for ops surfaces and the run report)."""
    with _registry_lock:
        return tuple(_registry.values())


def reset_breakers() -> None:
    """Drop every registered breaker (test isolation)."""
    with _registry_lock:
        _registry.clear()
