"""Sharded worker-pool execution of a summarization batch.

:func:`run_sharded` is the parallel twin of the serial loop in
:meth:`repro.core.STMaker.summarize_many` (which delegates here when
``workers > 1`` or a ``shard_size`` is given):

1. the batch is split into shards (:mod:`repro.serving.sharder`);
2. each shard runs on a :class:`~concurrent.futures.ThreadPoolExecutor`
   worker, item by item through the **same**
   ``STMaker._summarize_item`` code path the serial loop uses — retries,
   sanitization, degradation and quarantine semantics are shared code,
   not a reimplementation;
3. every shard gets its **own** :class:`~repro.resilience.Deadline` of the
   full budget (a slow shard cannot starve its siblings), and its items
   land in the shared result via :func:`repro.serving.ordering.reassemble`,
   so the output is in input order no matter the completion order.

Observability: the pool emits ``shard_start``/``shard_end`` events around
every shard, mirrors per-shard throughput into ``serving.shard.<id>.*``
gauges (the run report's per-shard breakdown), and keeps the serial path's
``batch_start``/``progress``/``batch_end`` stream intact, so dashboards
built on the serial vocabulary keep working.

Two executors (``executor=``), one contract:

* ``"thread"`` (default) — workers share the trained model's memory for
  free.  Pure-Python stages serialize on the GIL, so the wall-clock win
  comes from overlapping the *blocking* portions of item latency
  (storage, map-service calls, injected chaos latency) — the shape
  latency-bound production serving has.
* ``"process"`` — true multi-core for the CPU-bound pure-Python
  pipeline.  Workers rebuild the model from a versioned **city-model
  artifact** (:mod:`repro.artifact`; auto-published to a session temp
  file when no ``artifact=`` path is given) and ship their telemetry
  home as a :class:`~repro.obs.TelemetrySnapshot` that the parent merges
  (see :mod:`repro.serving.executor`).

See ``docs/SERVING.md`` for the measured scaling profile of both.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

from repro.exceptions import ConfigError
from repro.obs import (
    TraceContext,
    apply_telemetry,
    emit_event,
    events,
    get_collector,
    metrics,
    metrics_enabled,
    span,
    start_trace,
    use_trace,
)
from repro.obs.metrics import MetricsRegistry, scoped_metrics
from repro.resilience import (
    BatchProgress,
    BatchResult,
    Deadline,
    ItemOutcome,
    RetryPolicy,
)
from repro.serving.breaker import CircuitBreaker, get_breaker
from repro.serving.executor import (
    EXECUTORS,
    ShardResult,
    build_shard_tasks,
    check_process_compatible,
)
from repro.serving.ordering import reassemble
from repro.serving.sharder import Shard, plan_shards
from repro.serving.supervisor import (
    ShardRetryPolicy,
    run_shard_local,
    supervise_process_shards,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summarizer import STMaker
    from repro.serving.admission import AdmissionController, AdmissionPolicy
    from repro.trajectory import RawTrajectory, SanitizerConfig


class _ProgressBoard:
    """Thread-safe live tallies behind the batch ``progress`` callback."""

    def __init__(
        self,
        total: int,
        progress: Callable[[BatchProgress], None] | None,
    ) -> None:
        self._lock = threading.Lock()
        self._total = total
        self._progress = progress
        self._started = time.perf_counter()
        # Live rates are shared last-write-wins gauges, so they must land
        # on the batch-wide registry even when the calling worker thread
        # has a shard-local scoped registry installed — capture it now, on
        # the coordinating thread, before any shard scope exists.
        self._metrics = metrics()
        self.done = 0
        self.ok = 0
        self.quarantined = 0
        self.retries = 0

    def note(self, outcome: ItemOutcome) -> None:
        with self._lock:
            self.done += 1
            self.retries += outcome.retries
            if outcome.summary is not None:
                self.ok += 1
            else:
                self.quarantined += 1
            done, ok, quarantined, retries = (
                self.done, self.ok, self.quarantined, self.retries,
            )
        elapsed = time.perf_counter() - self._started
        rate = done / elapsed if elapsed > 0.0 else 0.0
        eta = (self._total - done) / rate if rate > 0.0 else None
        self._metrics.gauge("resilience.batch.items_per_s").set(rate)
        if eta is not None:
            self._metrics.gauge("resilience.batch.eta_s").set(eta)
        snapshot = BatchProgress(
            done, self._total, ok, quarantined, retries, elapsed, rate, eta,
        )
        emit_event("progress", **snapshot.to_dict())
        if self._progress is not None:
            self._progress(snapshot)


def run_sharded(
    stmaker: "STMaker",
    items: Sequence["RawTrajectory"],
    k: int | None = None,
    *,
    sanitize: bool = True,
    sanitizer_config: "SanitizerConfig | None" = None,
    strict: bool = False,
    retry: RetryPolicy | None = None,
    deadline_s: float | None = None,
    sleeper: Callable[[float], None] = time.sleep,
    progress: Callable[[BatchProgress], None] | None = None,
    workers: int = 2,
    shard_size: int | None = None,
    shard_mode: str = "balanced",
    shard_key: Callable[["RawTrajectory"], str] | None = None,
    executor: str = "thread",
    artifact: str | None = None,
    shard_retry: ShardRetryPolicy | None = None,
    breaker: "CircuitBreaker | bool | None" = None,
    admission: "AdmissionPolicy | AdmissionController | None" = None,
    tenant: str | None = None,
    priority: int = 0,
) -> BatchResult:
    """Summarize *items* on a pool of *workers*, shard by shard.

    Semantics match ``summarize_many(workers=1)`` element-wise — same
    summaries, same degradation reports, same quarantine entries, in the
    same input order (the differential suite pins this, for both
    executors).  The only intentional divergence is the deadline: each
    shard gets the full ``deadline_s`` budget instead of the whole batch
    sharing one clock.

    With ``executor="process"``, workers rebuild the model from the
    city-model artifact at *artifact* (which must hold the same trained
    state as *stmaker* for parallel ≡ serial to hold; when ``None`` the
    model is auto-published with :func:`repro.artifact.ensure_artifact`).
    Worker telemetry arrives as merged metric deltas, grafted spans, and
    relayed events — same totals as thread mode, but per-item events
    surface when each shard completes rather than live, and relayed
    events carry ``relay_*`` provenance keys.

    Failure containment (``docs/ROBUSTNESS.md``): the process executor
    always runs supervised — worker death is retried, bisected, and at
    worst quarantined under *shard_retry* (default
    :class:`~repro.serving.ShardRetryPolicy`), never propagated as
    ``BrokenProcessPool``.  *breaker* (``True`` for the registry breaker
    named ``serving.<executor>``, or an explicit
    :class:`~repro.serving.CircuitBreaker`) routes shards to an
    in-parent degraded path while open.  *admission* bounds the intake
    (may raise :class:`~repro.exceptions.OverloadError`, or override
    ``k`` under ``shed="degrade"``) and caps the supervisor's in-flight
    window via its ``max_in_flight_shards``; *tenant*/*priority* feed
    its budget and bypass hooks.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if executor not in EXECUTORS:
        raise ConfigError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    if artifact is not None and executor != "process":
        raise ConfigError("artifact= is only used with executor='process'")
    items = list(items)
    retry = retry or RetryPolicy()
    if breaker is True:
        breaker = get_breaker(f"serving.{executor}")
    elif breaker is False:
        breaker = None
    ticket = None
    admission_wait_s = 0.0
    if admission is not None:
        # May raise OverloadError (shed="reject") — before any work starts.
        admit_started = time.perf_counter()
        ticket = admission.admit(len(items), tenant=tenant, priority=priority)
        admission_wait_s = time.perf_counter() - admit_started
        if ticket.decision.k_override is not None:
            k = ticket.decision.k_override
    # Request identity is minted the moment the batch clears admission:
    # one TraceContext per item, all anchored at the same wall-clock
    # instant, so queue wait is "admitted but not yet picked up" on
    # whichever thread or process eventually serves the item.
    batch_anchor_unix = time.time()
    traces = [start_trace(anchor_unix_s=batch_anchor_unix) for _ in items]
    max_in_flight = (
        admission.max_in_flight_shards if admission is not None else None
    )
    keys = None
    if shard_mode == "hashed":
        key_of = shard_key or (lambda raw: raw.trajectory_id)
        keys = [key_of(raw) for raw in items]
    shards = plan_shards(
        len(items),
        mode=shard_mode,
        num_shards=None if shard_size is not None else workers,
        shard_size=shard_size,
        keys=keys,
    )
    m = metrics()
    m.counter("resilience.batch.calls").inc()
    m.counter("serving.batch.calls").inc()
    m.gauge("serving.workers").set(workers)
    m.gauge("serving.shards").set(len(shards))
    emit_event(
        "batch_start", items=len(items), k=k,
        workers=workers, shards=len(shards), shard_mode=shard_mode,
    )
    started = time.perf_counter()
    board = _ProgressBoard(len(items), progress)
    # Thread-mode shards run on pool threads with an empty span stack; the
    # link context (filled in once the batch span is live) re-parents each
    # shard's spans under it so the trace tree never fragments per thread.
    link: dict[str, TraceContext | None] = {"ctx": None}

    def run_shard(shard: Shard) -> list[ItemOutcome]:
        deadline = Deadline(deadline_s)
        emit_event("shard_start", shard_id=shard.shard_id, items=len(shard))
        shard_started = time.perf_counter()
        outcomes: list[ItemOutcome] = []
        ok = quarantined = 0
        # The cross-process telemetry contract, run at the thread boundary
        # today: each shard's item loop records counters/histograms into
        # its own fresh registry, and the delta is merged into the shared
        # registry when the shard ends.  A ProcessPoolExecutor worker will
        # ship the same snapshot over pickle instead of sharing memory —
        # same semantics, different transport (see repro.obs.aggregate).
        shard_registry = MetricsRegistry() if metrics_enabled() else None
        shard_scope = (
            scoped_metrics(shard_registry)
            if shard_registry is not None
            else contextlib.nullcontext()
        )
        with use_trace(link["ctx"]), \
                span("shard", shard_id=shard.shard_id, items=len(shard)):
            with shard_scope:
                for index in shard.indices:
                    outcome = stmaker._summarize_item(
                        index, items[index], k=k,
                        sanitize=sanitize, sanitizer_config=sanitizer_config,
                        strict=strict, retry=retry, deadline=deadline,
                        sleeper=sleeper, shard_id=shard.shard_id,
                        trace=traces[index],
                        admission_wait_s=admission_wait_s,
                    )
                    outcomes.append(outcome)
                    if outcome.summary is not None:
                        ok += 1
                    else:
                        quarantined += 1
                    board.note(outcome)
        if shard_registry is not None:
            m.merge_snapshot(shard_registry.snapshot())
        duration_ms = (time.perf_counter() - shard_started) * 1000.0
        rate = len(shard) / (duration_ms / 1000.0) if duration_ms > 0.0 else 0.0
        prefix = f"serving.shard.{shard.shard_id}"
        m.gauge(f"{prefix}.items").set(len(shard))
        m.gauge(f"{prefix}.ok").set(ok)
        m.gauge(f"{prefix}.quarantined").set(quarantined)
        m.gauge(f"{prefix}.duration_ms").set(duration_ms)
        m.gauge(f"{prefix}.items_per_s").set(rate)
        emit_event(
            "shard_end", shard_id=shard.shard_id, items=len(shard),
            ok=ok, quarantined=quarantined,
            duration_ms=duration_ms, items_per_s=rate,
        )
        return outcomes

    all_outcomes: list[ItemOutcome] = []
    try:
        with span(
            "summarize_many", items=len(items), k=k,
            workers=workers, shards=len(shards), executor=executor,
        ) as sp:
            batch_span_id = getattr(sp, "span_id", None)
            if batch_span_id is not None:
                link["ctx"] = TraceContext(
                    trace_id=None,
                    parent_span_id=batch_span_id,
                    parent_depth=getattr(sp, "depth", 0),
                )
            if executor == "process":
                all_outcomes = _run_shards_in_processes(
                    stmaker, shards, items,
                    artifact=artifact, k=k,
                    sanitize=sanitize, sanitizer_config=sanitizer_config,
                    strict=strict, retry=retry, deadline_s=deadline_s,
                    sleeper=sleeper, workers=workers, board=board, m=m,
                    shard_retry=shard_retry or ShardRetryPolicy(),
                    breaker=breaker, max_in_flight=max_in_flight,
                    traces=traces, admission_wait_s=admission_wait_s,
                    graft_parent_id=batch_span_id,
                )
            else:
                with ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-serving"
                ) as pool:
                    # In strict mode a worker raises; .result() re-raises the
                    # first failure here after the executor drains, matching
                    # the serial loop's raise-on-first-error contract.
                    for outcomes in pool.map(run_shard, shards):
                        all_outcomes.extend(outcomes)
                        if isinstance(breaker, CircuitBreaker):
                            # Thread shards cannot crash the pool; the record
                            # keeps a shared breaker's volume honest when the
                            # two executors alternate on one name.
                            breaker.record_success()
            reassembly_started = time.perf_counter()
            result = reassemble(all_outcomes, len(items))
            reassembly_s = time.perf_counter() - reassembly_started
            for lat in result.latencies:
                if lat is not None:
                    lat.reassembly_s = reassembly_s
            sp.set_tag("ok", result.ok_count)
            sp.set_tag("quarantined", result.quarantined_count)
    finally:
        if ticket is not None:
            ticket.release()
    emit_event(
        "batch_end", ok=result.ok_count,
        quarantined=result.quarantined_count,
        duration_ms=(time.perf_counter() - started) * 1000.0,
        shards=len(shards),
    )
    return result


def _fold_shard_result(
    sr: ShardResult, board: _ProgressBoard, m,
    graft_parent_id: int | None = None,
) -> None:
    """Merge one worker's ShardResult into the parent-side sinks.

    The parent-side half of the telemetry contract: the worker's metric
    delta merges into the live registry, its span batch grafts into the
    live collector (worker-root spans attach under *graft_parent_id*,
    the live batch span, so they join the parent's tree instead of
    floating), its events relay onto the live bus, and the
    ``serving.shard.<id>.*`` gauges are set here (gauges are last-write-
    wins state, so they must be *set* parent-side, not merged as
    offsets) — exactly where thread-mode shards set them.
    """
    if sr.telemetry is not None:
        apply_telemetry(
            sr.telemetry,
            registry=m if metrics_enabled() else None,
            collector=get_collector(),
            bus=events(),
            graft_parent_id=graft_parent_id,
        )
    prefix = f"serving.shard.{sr.shard_id}"
    m.gauge(f"{prefix}.items").set(len(sr.outcomes))
    m.gauge(f"{prefix}.ok").set(sr.ok)
    m.gauge(f"{prefix}.quarantined").set(sr.quarantined)
    m.gauge(f"{prefix}.duration_ms").set(sr.duration_ms)
    m.gauge(f"{prefix}.items_per_s").set(sr.items_per_s)
    for outcome in sr.outcomes:
        board.note(outcome)


def _run_shards_in_processes(
    stmaker: "STMaker",
    shards: Sequence[Shard],
    items: Sequence["RawTrajectory"],
    *,
    artifact: str | None,
    k: int | None,
    sanitize: bool,
    sanitizer_config: "SanitizerConfig | None",
    strict: bool,
    retry: RetryPolicy,
    deadline_s: float | None,
    sleeper: Callable[[float], None],
    workers: int,
    board: _ProgressBoard,
    m,
    shard_retry: ShardRetryPolicy,
    breaker: "CircuitBreaker | None",
    max_in_flight: int | None,
    traces: Sequence[TraceContext] | None = None,
    admission_wait_s: float = 0.0,
    graft_parent_id: int | None = None,
) -> list[ItemOutcome]:
    """Serve *shards* on a supervised ProcessPoolExecutor.

    The supervisor (:mod:`repro.serving.supervisor`) owns the pool:
    worker death never surfaces as ``BrokenProcessPool`` here — lost
    shards are retried, bisected, and at worst quarantined under
    *shard_retry*, while completed shards fold in completion order
    (:func:`reassemble` restores item order regardless).  In strict mode
    the first worker-raised item error still propagates unchanged.
    """
    from repro.artifact import artifact_info, ensure_artifact

    check_process_compatible(stmaker, sleeper)
    info = artifact_info(artifact) if artifact is not None else ensure_artifact(stmaker)
    tasks = build_shard_tasks(
        stmaker, shards, items,
        artifact_path=info.path, fingerprint=info.fingerprint,
        k=k, sanitize=sanitize, sanitizer_config=sanitizer_config,
        strict=strict, retry=retry, deadline_s=deadline_s, sleeper=sleeper,
        traces=traces, admission_wait_s=admission_wait_s,
    )
    all_outcomes: list[ItemOutcome] = []

    def fold(sr: ShardResult) -> None:
        _fold_shard_result(sr, board, m, graft_parent_id=graft_parent_id)
        all_outcomes.extend(sr.outcomes)

    supervise_process_shards(
        tasks,
        workers=workers,
        policy=shard_retry,
        fold=fold,
        local_runner=functools.partial(run_shard_local, stmaker),
        breaker=breaker,
        max_in_flight=max_in_flight,
        deadline_s=deadline_s,
        sleeper=sleeper,
        strict=strict,
    )
    return all_outcomes


async def run_sharded_async(
    stmaker: "STMaker",
    items: Sequence["RawTrajectory"],
    k: int | None = None,
    **kwargs: object,
) -> BatchResult:
    """``await``-able wrapper around :func:`run_sharded`.

    The pool (and its blocking shard work) runs on a worker thread via the
    running loop's default executor, so an asyncio front-end (an aiohttp
    handler, a queue consumer) can serve batches without blocking its
    event loop.  Accepts the same keyword arguments as :func:`run_sharded`.
    """
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, functools.partial(run_sharded, stmaker, items, k, **kwargs)
    )
