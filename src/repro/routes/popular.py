"""Popular-route mining (after Chen, Shen & Zhou, ICDE'11).

The most popular route ``PR`` between two landmarks is the route that
maximizes the product of landmark-to-landmark transfer probabilities
observed in the historical trajectories.  Maximizing a product of
probabilities is a shortest-path problem under ``-log`` edge weights, solved
here with Dijkstra over the transfer network.
"""

from __future__ import annotations

import heapq
import math

from repro.exceptions import ConfigError
from repro.landmarks import LandmarkId
from repro.routes.transfer import TransferNetwork


class PopularRouteMiner:
    """Mines the most popular historical route between landmark pairs."""

    def __init__(self, transfers: TransferNetwork, min_support: int = 1) -> None:
        if min_support < 1:
            raise ConfigError(f"min_support must be at least 1, got {min_support}")
        self.transfers = transfers
        self.min_support = min_support

    def popular_route(
        self, source: LandmarkId, target: LandmarkId
    ) -> list[LandmarkId] | None:
        """The popularity-maximizing landmark path, or ``None`` if no
        historical route connects the pair.

        Transitions with support below ``min_support`` are ignored, so a
        single eccentric trajectory cannot define the "popular" route when
        the threshold is raised.
        """
        if source == target:
            return [source]
        dist: dict[LandmarkId, float] = {source: 0.0}
        parents: dict[LandmarkId, LandmarkId] = {}
        done: set[LandmarkId] = set()
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in done:
                continue
            if u == target:
                path = [target]
                while path[-1] in parents:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            done.add(u)
            out = self.transfers.out_transitions(u)
            total = sum(out.values())
            if total == 0:
                continue
            for v, count in out.items():
                if count < self.min_support or v in done:
                    continue
                weight = -math.log(count / total)
                nd = d + weight
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    parents[v] = u
                    heapq.heappush(heap, (nd, v))
        return None

    def route_popularity(self, route: list[LandmarkId]) -> float:
        """Product of transfer probabilities along *route* (0 if any hop
        is unobserved)."""
        if len(route) < 2:
            return 1.0
        p = 1.0
        for src, dst in zip(route, route[1:]):
            p *= self.transfers.transition_probability(src, dst)
            if p == 0.0:
                return 0.0
        return p
