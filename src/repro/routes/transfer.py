"""Transfer network: landmark-to-landmark transition statistics.

Built once over the training (historical) symbolic trajectories, this
directed multigraph records how often traffic moves directly between two
landmarks.  It is the shared substrate of popular-route mining
(:mod:`repro.routes.popular`) and of the check-in-free part of landmark
significance (taxi visits).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.landmarks import LandmarkId
from repro.trajectory import SymbolicTrajectory


class TransferNetwork:
    """Directed landmark graph weighted by observed transition counts."""

    def __init__(self) -> None:
        self._out: dict[LandmarkId, dict[LandmarkId, int]] = {}
        self._total_transitions = 0

    # -- construction --------------------------------------------------------

    def add_transition(self, src: LandmarkId, dst: LandmarkId, count: int = 1) -> None:
        """Record *count* direct movements from *src* to *dst*."""
        if count < 1:
            return
        self._out.setdefault(src, {})
        self._out[src][dst] = self._out[src].get(dst, 0) + count
        self._total_transitions += count

    def add_trajectory(self, trajectory: SymbolicTrajectory) -> None:
        """Record every consecutive landmark pair of *trajectory*."""
        ids = trajectory.landmark_ids()
        for src, dst in zip(ids, ids[1:]):
            self.add_transition(src, dst)

    def add_trajectories(self, trajectories: Iterable[SymbolicTrajectory]) -> None:
        """Bulk :meth:`add_trajectory`."""
        for trajectory in trajectories:
            self.add_trajectory(trajectory)

    # -- queries --------------------------------------------------------------

    @property
    def total_transitions(self) -> int:
        return self._total_transitions

    def transition_count(self, src: LandmarkId, dst: LandmarkId) -> int:
        """Observed direct movements from *src* to *dst*."""
        return self._out.get(src, {}).get(dst, 0)

    def out_degree(self, src: LandmarkId) -> int:
        """Total observed movements leaving *src*."""
        return sum(self._out.get(src, {}).values())

    def out_transitions(self, src: LandmarkId) -> dict[LandmarkId, int]:
        """Successor landmarks of *src* with their counts (a copy)."""
        return dict(self._out.get(src, {}))

    def transition_probability(self, src: LandmarkId, dst: LandmarkId) -> float:
        """Empirical probability of moving to *dst* next, given at *src*."""
        total = self.out_degree(src)
        if total == 0:
            return 0.0
        return self.transition_count(src, dst) / total

    def landmarks(self) -> set[LandmarkId]:
        """Every landmark that appears as a source or a destination."""
        seen = set(self._out)
        for successors in self._out.values():
            seen.update(successors)
        return seen

    def edges(self) -> Iterator[tuple[LandmarkId, LandmarkId, int]]:
        """Iterate ``(src, dst, count)`` over all observed transitions."""
        for src, successors in self._out.items():
            for dst, count in successors.items():
                yield (src, dst, count)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "edges": [[src, dst, count] for src, dst, count in self.edges()]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransferNetwork":
        """Inverse of :meth:`to_dict`."""
        network = cls()
        for src, dst, count in data["edges"]:
            network.add_transition(src, dst, count)
        return network
