"""Historical feature map (paper Sec. V-B).

For every moving feature, a directed graph over landmarks whose edge
``(l_i, l_j)`` is annotated with the *average* feature value observed on
historical trajectories travelling directly from ``l_i`` to ``l_j`` — e.g.
the ordinary speed or the ordinary number of stay points on that hop.  The
feature selector compares a partition's observed values against these
regular values to compute moving-feature irregular rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.landmarks import LandmarkId


@dataclass(slots=True)
class _Accumulator:
    total: float = 0.0
    count: int = 0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class HistoricalFeatureMap:
    """Average moving-feature values per landmark transition."""

    def __init__(self) -> None:
        # (src, dst) -> feature key -> accumulator
        self._edges: dict[tuple[LandmarkId, LandmarkId], dict[str, _Accumulator]] = {}
        # feature key -> global accumulator, the fallback for unseen edges
        self._global: dict[str, _Accumulator] = {}

    def add_observation(
        self, src: LandmarkId, dst: LandmarkId, values: Mapping[str, float]
    ) -> None:
        """Record one historical traversal of ``src -> dst`` with its
        per-feature values."""
        slot = self._edges.setdefault((src, dst), {})
        for key, value in values.items():
            slot.setdefault(key, _Accumulator()).add(value)
            self._global.setdefault(key, _Accumulator()).add(value)

    def has_edge(self, src: LandmarkId, dst: LandmarkId) -> bool:
        """Whether any traversal of ``src -> dst`` was observed."""
        return (src, dst) in self._edges

    def observation_count(self, src: LandmarkId, dst: LandmarkId, key: str) -> int:
        """Number of recorded traversals carrying feature *key*."""
        slot = self._edges.get((src, dst))
        if not slot or key not in slot:
            return 0
        return slot[key].count

    def regular_value(
        self, src: LandmarkId, dst: LandmarkId, key: str
    ) -> float | None:
        """The ordinary value ``r_{src -> dst}`` of feature *key*.

        Falls back to the feature's city-wide average when the specific
        transition was never observed; returns ``None`` only when the
        feature is entirely unknown to the map.
        """
        slot = self._edges.get((src, dst))
        if slot and key in slot:
            return slot[key].mean
        if key in self._global:
            return self._global[key].mean
        return None

    def global_average(self, key: str) -> float | None:
        """City-wide average of feature *key*, if any observation exists."""
        if key in self._global:
            return self._global[key].mean
        return None

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible representation (sums and counts, exactly)."""
        return {
            "edges": [
                {
                    "src": src,
                    "dst": dst,
                    "features": {
                        key: [acc.total, acc.count] for key, acc in slot.items()
                    },
                }
                for (src, dst), slot in self._edges.items()
            ],
            "global": {
                key: [acc.total, acc.count] for key, acc in self._global.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistoricalFeatureMap":
        """Inverse of :meth:`to_dict`."""
        feature_map = cls()
        for edge in data["edges"]:
            slot = feature_map._edges.setdefault((edge["src"], edge["dst"]), {})
            for key, (total, count) in edge["features"].items():
                slot[key] = _Accumulator(total, count)
        for key, (total, count) in data["global"].items():
            feature_map._global[key] = _Accumulator(total, count)
        return feature_map
