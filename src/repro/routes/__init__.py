"""Historical knowledge: transfer network, popular routes, feature map."""

from repro.routes.transfer import TransferNetwork
from repro.routes.popular import PopularRouteMiner
from repro.routes.feature_map import HistoricalFeatureMap

__all__ = ["TransferNetwork", "PopularRouteMiner", "HistoricalFeatureMap"]
