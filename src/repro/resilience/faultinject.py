"""Deterministic fault injection for the summarization pipeline.

The harness arms exceptions and/or latency against named pipeline stages;
:class:`repro.core.STMaker` consults its installed injector at every stage
boundary.  Everything is deterministic: firing is governed by explicit
per-spec counters or by a seeded RNG, never by wall-clock state, so a chaos
test replays identically on every run.

Typical chaos-test usage::

    injector = FaultInjector([FaultSpec(stage="partition")])
    with injector.installed(stmaker):
        summary = stmaker.summarize(raw)          # degrades, does not raise
    assert "partition" in summary.degradation.stages()
    assert injector.fired("partition") == 1
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.exceptions import ConfigError, ReproError, WorkerCrashError
from repro.resilience.degradation import STAGES

#: What an armed spec does when it fires.
#:
#: * ``"error"`` — apply latency, then raise ``spec.error`` (the original
#:   behaviour; ``error=None`` makes it latency-only);
#: * ``"crash"`` — die the way a segfaulting native extension does: inside
#:   a worker *process* the interpreter exits via ``os._exit`` (no
#:   cleanup, no exception, the pool sees a dead worker); anywhere that
#:   cannot be killed safely (the serial loop, a thread worker) it raises
#:   :class:`~repro.exceptions.WorkerCrashError` instead, so every
#:   executor quarantines the same items;
#: * ``"hang"`` — stop making progress: sleep ``latency_s`` (default
#:   :data:`DEFAULT_HANG_S`) through the injector's sleeper, then raise
#:   :class:`WorkerCrashError`.  In a real worker process with the real
#:   sleeper the parent-side supervisor declares the hang first and kills
#:   the worker — the raise is only reached by stubbed-sleeper tests and
#:   in-process executions;
#: * ``"oom-sim"`` — simulate the kernel OOM killer: a worker process
#:   gets ``SIGKILL`` (even less polite than ``crash``); elsewhere it
#:   raises :class:`WorkerCrashError`.
FAULT_KINDS: tuple[str, ...] = ("error", "crash", "hang", "oom-sim")

#: How long a ``hang`` fault sleeps when its spec gives no ``latency_s``.
DEFAULT_HANG_S: float = 3600.0

#: Exit code of a ``crash`` fault in a worker process (mirrors SIGKILL's
#: conventional 128+9 so post-mortems read like a real worker death).
CRASH_EXIT_CODE: int = 137


class InjectedFault(ReproError):
    """Default exception raised by an armed :class:`FaultSpec`."""


def in_worker_process() -> bool:
    """True inside a ``multiprocessing`` child (e.g. a process-pool worker).

    Crash-grade faults must only take down processes whose death is
    contained by shard supervision; killing the parent would take the
    whole batch (or the test runner) with it.
    """
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One armed fault: which stage, what to do, how often.

    ``kind`` selects the failure mode (:data:`FAULT_KINDS`); the default
    ``"error"`` keeps the original semantics.  ``error`` is an exception
    *type* instantiated with a message at fire time (``None`` = latency
    only; only meaningful for ``kind="error"``).  ``times`` bounds how
    often the spec fires (``None`` = every matching call).  When
    ``probability`` is set, each matching call fires with that seeded
    probability instead of unconditionally.  ``trajectory_id`` narrows
    the spec to one input item — the shape crash-containment tests need
    ("this exact trajectory is poison"), and deterministic under any
    scheduling because it does not depend on call order.

    Everything here is plain data, so a spec list pickles across the
    process boundary: the serving executor rebuilds an equivalent
    injector inside every worker from ``(specs, seed)``.
    """

    #: Stage name from :data:`repro.resilience.STAGES`, or ``"*"`` for all.
    stage: str
    error: type[BaseException] | None = InjectedFault
    latency_s: float = 0.0
    times: int | None = 1
    probability: float | None = None
    #: One of :data:`FAULT_KINDS`.
    kind: str = "error"
    #: Only fire for this input item (``None`` = any).
    trajectory_id: str | None = None

    def __post_init__(self) -> None:
        if self.stage != "*" and self.stage not in STAGES:
            raise ConfigError(
                f"unknown stage {self.stage!r}; expected one of {STAGES} or '*'"
            )
        if self.latency_s < 0.0:
            raise ConfigError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.times is not None and self.times < 0:
            raise ConfigError(f"times must be >= 0, got {self.times}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"probability must be in [0, 1], got {self.probability}")
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


class FaultInjector:
    """Evaluates armed :class:`FaultSpec` s at stage boundaries."""

    def __init__(
        self,
        specs: Iterable[FaultSpec],
        seed: int = 0,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        self._specs = list(specs)
        self._remaining = [spec.times for spec in self._specs]
        self.seed = seed
        self._rng = random.Random(seed)
        self._sleeper = sleeper
        self._fired: dict[str, int] = {}
        # Shared injectors get hit concurrently by serving pool workers;
        # the counters must not lose updates (the stress suite checks).
        self._lock = threading.Lock()

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """The armed specs, as configured (fire counts are not reflected).

        Together with :attr:`seed` this is everything needed to rebuild an
        equivalent injector elsewhere — e.g. inside a process-pool worker,
        where the injector itself cannot travel (it holds a lock and
        possibly an unpicklable sleeper).
        """
        return tuple(self._specs)

    @classmethod
    def raising(
        cls,
        stage: str,
        error: type[BaseException] = InjectedFault,
        times: int | None = 1,
        seed: int = 0,
    ) -> "FaultInjector":
        """Shorthand for a single exception-raising spec."""
        return cls([FaultSpec(stage=stage, error=error, times=times)], seed=seed)

    def before(self, stage: str, trajectory_id: str | None = None) -> None:
        """Called by the pipeline when *stage* is about to run.

        Applies latency, then raises (or crashes — see
        :data:`FAULT_KINDS`), for every armed spec matching the stage and,
        when the spec targets one, the *trajectory_id* being processed.
        A no-op when nothing matches or all specs are exhausted.
        Thread-safe: the spec bookkeeping happens under a lock, the
        latency sleeps and the raise happen outside it, so concurrent
        pool workers never lose a fire count and never sleep serialized.
        """
        firing: list[FaultSpec] = []
        with self._lock:
            for i, spec in enumerate(self._specs):
                if spec.stage not in (stage, "*"):
                    continue
                if (
                    spec.trajectory_id is not None
                    and spec.trajectory_id != trajectory_id
                ):
                    continue
                if self._remaining[i] == 0:
                    continue
                if (
                    spec.probability is not None
                    and self._rng.random() >= spec.probability
                ):
                    continue
                if self._remaining[i] is not None:
                    self._remaining[i] -= 1
                self._fired[stage] = self._fired.get(stage, 0) + 1
                firing.append(spec)
                if spec.kind != "error" or spec.error is not None:
                    # The raise below ends this call; later specs stay
                    # armed exactly as in the original serial semantics.
                    break
        for spec in firing:
            self._fire(spec, stage)

    def _fire(self, spec: FaultSpec, stage: str) -> None:
        """Execute one armed spec's failure mode (outside the lock)."""
        if spec.kind == "crash":
            if in_worker_process():
                os._exit(CRASH_EXIT_CODE)
            raise WorkerCrashError(f"injected crash in stage {stage!r}")
        if spec.kind == "oom-sim":
            if in_worker_process():
                os.kill(os.getpid(), signal.SIGKILL)
            raise WorkerCrashError(f"injected oom kill in stage {stage!r}")
        if spec.kind == "hang":
            self._sleeper(spec.latency_s or DEFAULT_HANG_S)
            raise WorkerCrashError(f"injected hang in stage {stage!r}")
        if spec.latency_s > 0.0:
            self._sleeper(spec.latency_s)
        if spec.error is not None:
            raise spec.error(f"injected fault in stage {stage!r}")

    def fired(self, stage: str | None = None) -> int:
        """How often faults fired — for one stage, or in total."""
        with self._lock:
            if stage is not None:
                return self._fired.get(stage, 0)
            return sum(self._fired.values())

    def fired_by_stage(self) -> dict[str, int]:
        with self._lock:
            return dict(self._fired)

    @contextlib.contextmanager
    def installed(self, stmaker) -> Iterator["FaultInjector"]:
        """Install this injector on *stmaker* for the duration of the block."""
        previous = stmaker.fault_injector
        stmaker.fault_injector = self
        try:
            yield self
        finally:
            stmaker.fault_injector = previous
