"""Result types for batch summarization with per-item error isolation.

A batch never raises because one trajectory is broken (unless ``strict``):
healthy items come back as summaries, broken ones land in the quarantine
list with enough context to triage them offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.trajectory.sanitize import SanitizationReport

if TYPE_CHECKING:  # avoid the repro.core <-> repro.resilience import cycle
    from repro.core.types import TrajectorySummary


@dataclass(slots=True)
class LatencyBreakdown:
    """Where one batch item's wall-clock time went, phase by phase.

    Recorded for **every** item — serial, thread-pool, or process-pool —
    regardless of whether tracing/metrics/events are enabled: the cost is
    a handful of ``perf_counter`` reads against items that take
    milliseconds.  A plain mutable dataclass so it pickles across the
    process boundary inside its :class:`ItemOutcome`.

    The phases tile the item's life: *admission wait* (blocked in
    :meth:`~repro.serving.AdmissionPolicy.admit` before the batch
    started), *queue wait* (admitted but not yet picked up by a
    worker/the serial loop), *exec* (inside summarization attempts),
    *backoff* (sleeping between transient retries), and *reassembly*
    (input-order rebuild after the pool drained — a per-batch constant).
    ``stages_s`` splits exec time by pipeline stage via the
    :class:`~repro.obs.events.stage_sink` hook.
    """

    #: Request identity, when a :class:`~repro.obs.TraceContext` was active.
    trace_id: str | None = None
    admission_wait_s: float = 0.0
    queue_wait_s: float = 0.0
    #: Summarization attempts made (retries included; 0 = never started).
    attempts: int = 0
    exec_s: float = 0.0
    backoff_s: float = 0.0
    reassembly_s: float = 0.0
    #: Wall-clock seconds from pickup to settled outcome (exec + backoff).
    total_s: float = 0.0
    #: Execution seconds per pipeline stage (``calibrate``, ``partition``,
    #: ...), plus the umbrella ``summarize`` scope.
    stages_s: dict[str, float] = field(default_factory=dict)

    def note_stage(self, stage: str, duration_s: float, ok: bool = True) -> None:
        """A :class:`~repro.obs.events.StageSink`-shaped accumulator."""
        self.stages_s[stage] = self.stages_s.get(stage, 0.0) + duration_s

    def to_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "admission_wait_s": self.admission_wait_s,
            "queue_wait_s": self.queue_wait_s,
            "attempts": self.attempts,
            "exec_s": self.exec_s,
            "backoff_s": self.backoff_s,
            "reassembly_s": self.reassembly_s,
            "total_s": self.total_s,
            "stages_s": dict(self.stages_s),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LatencyBreakdown":
        return cls(
            trace_id=(
                None if data.get("trace_id") is None else str(data["trace_id"])
            ),
            admission_wait_s=float(data.get("admission_wait_s", 0.0)),  # type: ignore[arg-type]
            queue_wait_s=float(data.get("queue_wait_s", 0.0)),  # type: ignore[arg-type]
            attempts=int(data.get("attempts", 0)),  # type: ignore[arg-type]
            exec_s=float(data.get("exec_s", 0.0)),  # type: ignore[arg-type]
            backoff_s=float(data.get("backoff_s", 0.0)),  # type: ignore[arg-type]
            reassembly_s=float(data.get("reassembly_s", 0.0)),  # type: ignore[arg-type]
            total_s=float(data.get("total_s", 0.0)),  # type: ignore[arg-type]
            stages_s=dict(data.get("stages_s") or {}),  # type: ignore[arg-type]
        )


@dataclass(frozen=True, slots=True)
class QuarantineEntry:
    """One trajectory that failed even after degradation (or retries).

    Carries enough for a post-mortem to distinguish "failed instantly
    once" from "retried three times over eleven seconds and then took a
    worker down": the final error, the attempt count, the total wall
    clock the item consumed, and which shard was serving it.  The two
    timing/placement fields are excluded from equality — the parallel ≡
    serial differential contract compares *what* failed and *why*, not
    how long it took or where it was scheduled.
    """

    #: Position of the item in the input batch.
    index: int
    trajectory_id: str
    #: Exception class name (``"CalibrationError"``, ``"DeadlineExceeded"``, ...).
    error_type: str
    #: Exception message.
    error: str
    #: How many summarization attempts were made (0 = never started).
    attempts: int
    #: Wall-clock seconds spent on the item across every attempt,
    #: including retry backoff (0.0 when it never started).
    total_duration_s: float = field(default=0.0, compare=False)
    #: Shard that served the item (``None`` on the serial path).
    shard_id: int | None = field(default=None, compare=False)
    #: Phase-by-phase timing of the doomed item (``None`` for entries
    #: synthesized before latency accounting existed).  Excluded from
    #: equality like the other forensic fields.
    latency: "LatencyBreakdown | None" = field(default=None, compare=False)

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "trajectory_id": self.trajectory_id,
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
            "total_duration_s": self.total_duration_s,
            "shard_id": self.shard_id,
            "latency": None if self.latency is None else self.latency.to_dict(),
        }


@dataclass(frozen=True, slots=True)
class ItemOutcome:
    """The complete outcome of one batch item, keyed by its input index.

    Exactly one of ``summary`` / ``quarantine`` is set.  This is the unit
    of work shared by the serial loop in
    :meth:`repro.core.STMaker.summarize_many` and the sharded worker pool
    in :mod:`repro.serving`: both produce the same outcomes item by item,
    which is what makes "parallel ≡ serial" hold by construction.
    """

    #: Position of the item in the input batch.
    index: int
    summary: "TrajectorySummary | None"
    quarantine: QuarantineEntry | None
    #: The item's sanitization report (``None`` when sanitization was off
    #: or the item never reached the cleaning pass).
    sanitization: SanitizationReport | None
    #: Transient retries this item consumed before succeeding or giving up.
    retries: int = 0
    #: Phase-by-phase wall-clock accounting; excluded from equality so the
    #: parallel ≡ serial differential contract compares outcomes, not
    #: schedules.
    latency: LatencyBreakdown | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if (self.summary is None) == (self.quarantine is None):
            raise ValueError(
                f"item {self.index}: exactly one of summary/quarantine must be set"
            )


@dataclass(frozen=True, slots=True)
class BatchProgress:
    """A live throughput snapshot, delivered after each batch item.

    :meth:`repro.core.STMaker.summarize_many` hands one of these to its
    ``progress`` callback (and mirrors the rate/ETA into the
    ``resilience.batch.items_per_s`` / ``resilience.batch.eta_s`` gauges)
    so long batches are observable while they run, not just afterwards.
    """

    #: Items finished so far (ok + quarantined), 1-based.
    done: int
    #: Total items in the batch.
    total: int
    ok: int
    quarantined: int
    retries: int
    elapsed_s: float
    items_per_s: float
    #: Estimated seconds to completion (``None`` until the rate is known).
    eta_s: float | None

    @property
    def percent(self) -> float:
        return 100.0 * self.done / self.total if self.total else 100.0

    def to_dict(self) -> dict[str, object]:
        """The snapshot as a plain dict — the ``progress`` event payload."""
        return {
            "done": self.done,
            "total": self.total,
            "ok": self.ok,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "elapsed_s": self.elapsed_s,
            "items_per_s": self.items_per_s,
            "eta_s": self.eta_s,
        }

    def describe(self) -> str:
        """A one-line human-readable progress report."""
        eta = f"eta {self.eta_s:.0f}s" if self.eta_s is not None else "eta -"
        return (
            f"{self.done}/{self.total} ({self.percent:.0f}%) "
            f"ok={self.ok} quarantined={self.quarantined} retries={self.retries} "
            f"{self.items_per_s:.1f} items/s {eta}"
        )


@dataclass(slots=True)
class BatchResult:
    """Outcome of :meth:`repro.core.STMaker.summarize_many`."""

    #: Summaries of the healthy items, in input order.
    summaries: list["TrajectorySummary"] = field(default_factory=list)
    #: Items that could not be summarized at all.
    quarantined: list[QuarantineEntry] = field(default_factory=list)
    #: Per-item sanitization reports (input order; ``None`` when sanitization
    #: was disabled or the item was quarantined before cleaning).
    sanitization: list[SanitizationReport | None] = field(default_factory=list)
    #: Per-item latency breakdowns (input order, healthy and quarantined
    #: alike; ``None`` for outcomes produced before accounting existed).
    latencies: list[LatencyBreakdown | None] = field(default_factory=list)

    @property
    def ok_count(self) -> int:
        return len(self.summaries)

    @property
    def quarantined_count(self) -> int:
        return len(self.quarantined)

    @property
    def degraded_count(self) -> int:
        """How many of the healthy summaries needed at least one fallback."""
        return sum(1 for s in self.summaries if s.degradation.degraded)

    def __repr__(self) -> str:
        return (
            f"BatchResult(ok={self.ok_count}, degraded={self.degraded_count}, "
            f"quarantined={self.quarantined_count})"
        )
