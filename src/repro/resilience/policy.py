"""Retry and deadline policies for batch summarization.

Both are deliberately deterministic: the backoff schedule is a plain
geometric progression with no jitter, so a failing batch replays exactly
the same way twice — essential for the fault-injection tests and for
debugging production incidents from logs alone.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigError, DeadlineExceeded


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry with deterministic geometric backoff.

    ``max_retries`` is the number of *re*-tries: an item is attempted at
    most ``max_retries + 1`` times.  The delay before retry ``n`` (1-based)
    is ``backoff_base_s * backoff_factor ** (n - 1)``.
    """

    max_retries: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0.0:
            raise ConfigError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay_s(self, retry_number: int) -> float:
        """Backoff before the *retry_number*-th retry (1-based)."""
        if retry_number < 1:
            raise ConfigError(f"retry numbers are 1-based, got {retry_number}")
        return self.backoff_base_s * self.backoff_factor ** (retry_number - 1)


class Deadline:
    """A wall-clock budget: ``Deadline(2.0)`` expires two seconds from now.

    A ``budget_s`` of ``None`` never expires.  The clock is injectable for
    tests (any zero-argument callable returning seconds).
    """

    __slots__ = ("budget_s", "_clock", "_t0")

    def __init__(
        self, budget_s: float | None, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_s is not None and budget_s < 0.0:
            raise ConfigError(f"deadline budget must be >= 0, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._t0 = clock()

    def remaining_s(self) -> float:
        """Seconds left in the budget, clamped at 0.0 (``inf`` when unbounded).

        The clamp matters in long retry loops: raw ``budget - elapsed``
        arithmetic goes negative once the budget is spent (and can even
        go negative on a *fresh* deadline when the clock churns
        backwards, e.g. a test clock or a suspended VM), and a negative
        "remaining" poisons any downstream arithmetic that scales work
        by the time left.  Spent is spent: the floor is 0.0.
        """
        if self.budget_s is None:
            return math.inf
        return max(0.0, self.budget_s - (self._clock() - self._t0))

    @property
    def expired(self) -> bool:
        """True once no budget remains (consistent with the 0.0 clamp)."""
        if self.budget_s is None:
            return False
        return self.remaining_s() <= 0.0

    def check(self, label: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"{label} exceeded the {self.budget_s:g}s deadline budget"
            )

    def __repr__(self) -> str:
        if self.budget_s is None:
            return "Deadline(unbounded)"
        return f"Deadline(budget={self.budget_s:g}s, remaining={self.remaining_s():.3f}s)"
