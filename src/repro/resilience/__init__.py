"""Resilience substrate: graceful degradation, batching policies, chaos.

This package holds everything the pipeline needs to *survive* bad input
and flaky stages instead of crashing:

* :class:`DegradationReport` / :class:`DegradationEvent` — which fallbacks
  a summary needed (attached to every ``TrajectorySummary``);
* :class:`RetryPolicy` / :class:`Deadline` — deterministic backoff and
  wall-clock budgets for ``STMaker.summarize_many``;
* :class:`BatchResult` / :class:`QuarantineEntry` — per-item error
  isolation for batches;
* :class:`FaultInjector` / :class:`FaultSpec` — the seeded chaos harness
  that proves every fallback path actually fires.

The input-cleaning half lives in :mod:`repro.trajectory.sanitize`; the
degradation ladder itself is implemented in :mod:`repro.core.summarizer`.
See ``docs/ROBUSTNESS.md`` for the guided tour.
"""

from repro.resilience.batch import (
    BatchProgress,
    BatchResult,
    ItemOutcome,
    LatencyBreakdown,
    QuarantineEntry,
)
from repro.resilience.degradation import STAGES, DegradationEvent, DegradationReport
from repro.resilience.faultinject import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
)
from repro.resilience.policy import Deadline, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "STAGES",
    "DegradationEvent",
    "DegradationReport",
    "RetryPolicy",
    "Deadline",
    "BatchProgress",
    "BatchResult",
    "ItemOutcome",
    "LatencyBreakdown",
    "QuarantineEntry",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
]
