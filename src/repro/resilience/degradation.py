"""Degradation ladder bookkeeping.

When a pipeline stage fails and :class:`repro.core.STMaker` substitutes a
fallback (geometric anchors, moving-features-only extraction, a single
partition, a generic sentence), the substitution is recorded as a
:class:`DegradationEvent` in the summary's :class:`DegradationReport` so
callers can tell a pristine summary from a best-effort one.

See ``docs/ROBUSTNESS.md`` for the full degradation ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: The five pipeline stages, in execution order.  Fault injection and
#: degradation events both use these names.
STAGES: tuple[str, ...] = ("calibrate", "extract", "partition", "select", "realize")


@dataclass(frozen=True, slots=True)
class DegradationEvent:
    """One stage failure that was absorbed by a fallback."""

    #: Stage that failed — one of :data:`STAGES` or ``"sanitize"``.
    stage: str
    #: Name of the fallback that stood in (e.g. ``"geometric_anchors"``).
    fallback: str
    #: ``"ErrorType: message"`` of the absorbed exception.
    reason: str

    def to_dict(self) -> dict[str, str]:
        return {"stage": self.stage, "fallback": self.fallback, "reason": self.reason}


class DegradationReport:
    """Ordered collection of the degradation events of one summarization."""

    __slots__ = ("events",)

    def __init__(self, events: tuple[DegradationEvent, ...] | list[DegradationEvent] = ()) -> None:
        self.events: list[DegradationEvent] = list(events)

    def add(self, event: DegradationEvent) -> None:
        self.events.append(event)

    @property
    def degraded(self) -> bool:
        """True when at least one fallback fired."""
        return bool(self.events)

    def stages(self) -> list[str]:
        """Stages that degraded, in the order they fired (deduplicated)."""
        return list(dict.fromkeys(event.stage for event in self.events))

    def for_stage(self, stage: str) -> list[DegradationEvent]:
        return [event for event in self.events if event.stage == stage]

    def to_dict(self) -> dict[str, object]:
        return {"degraded": self.degraded, "events": [e.to_dict() for e in self.events]}

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DegradationEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return self.degraded

    def __repr__(self) -> str:
        if not self.events:
            return "DegradationReport(clean)"
        return f"DegradationReport(stages={self.stages()})"
