"""Request front-end for long-lived summarization serving.

Every earlier layer drives :meth:`~repro.core.STMaker.summarize_many`
directly, one batch at a time.  This package is the front door a
long-lived process puts in front of it:

* :class:`~repro.server.config.ServerConfig` — declarative queue,
  deadline, cache, admission, and serving-path configuration;
* :class:`~repro.server.queue.RequestQueue` — bounded multi-tenant
  intake, FIFO within a tenant, weighted round-robin across tenants;
* :class:`~repro.server.frontend.SummarizationServer` /
  :class:`~repro.server.frontend.RequestHandle` — submit batches from
  any thread, consumer threads drain admitted work into the existing
  ``summarize_many``/``run_sharded`` path (admission and circuit
  breaking consumed from :mod:`repro.serving`, not reinvented);
* :mod:`~repro.server.cache` — bounded LRU hot caches for the paper's
  expensive historical lookups (popular routes, anchor history), keyed
  on ``(artifact_fingerprint, query)``.

The contract — **server ≡ summarize_many**, byte-identical summaries and
quarantine verdicts, cold or warm cache, thread or process executor —
is pinned by ``tests/test_server_differential.py``; the queue/cache laws
by ``tests/test_server_properties.py``; zero lost or duplicated
responses by ``tests/test_server_soak.py``.  See ``docs/SERVING.md``
("Request front-end").
"""

from repro.server.cache import (
    MISS,
    CachingFeatureSelector,
    HotQueryCaches,
    LRUCache,
    cached_view,
    model_fingerprint,
)
from repro.server.config import ServerConfig
from repro.server.frontend import RequestHandle, SummarizationServer
from repro.server.queue import RequestQueue

__all__ = [
    "CachingFeatureSelector",
    "HotQueryCaches",
    "LRUCache",
    "MISS",
    "RequestHandle",
    "RequestQueue",
    "ServerConfig",
    "SummarizationServer",
    "cached_view",
    "model_fingerprint",
]
