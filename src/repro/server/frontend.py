"""The request front-end: router, queue consumer, and request handles.

:class:`SummarizationServer` is the long-lived in-process front door the
ROADMAP's "millions of users" story needs: callers :meth:`~SummarizationServer.submit`
batches and get back a :class:`RequestHandle` (a small future); consumer
threads drain the bounded multi-tenant :class:`~repro.server.queue.RequestQueue`
in weighted round-robin order and serve each request through the
**existing** :meth:`~repro.core.STMaker.summarize_many` path — the same
code the differential suites already prove element-wise identical to the
serial loop — against a cached view of the model
(:func:`~repro.server.cache.cached_view`).

Nothing is reinvented at the edges:

* **admission** — every submit passes through a
  :class:`~repro.serving.AdmissionController` (global + per-tenant item
  budgets, ``shed="reject"``/``"degrade"``, priority bypass); the ticket
  is held until the request settles;
* **breaker** — ``ServerConfig(breaker=True)`` routes each request with
  the process-wide ``serving.<executor>`` circuit breaker, exactly as a
  direct ``summarize_many(breaker=True)`` caller would;
* **deadlines** — a request's budget counts from enqueue; whatever is
  left when a consumer picks it up becomes ``summarize_many``'s
  ``deadline_s``, so an expired request resolves as typed
  ``DeadlineExceeded`` quarantine entries (a shed, never a hang);
* **observability** — ``request_enqueued`` / ``request_done`` events,
  ``server.queue.depth`` gauges, ``server.requests.*`` counters, a
  ``"server"`` block on the ops ``/status`` page
  (:func:`repro.obs.register_status_section`), and the SLO feed for free
  (``summarize_many`` emits the ``item_end`` events the engine consumes).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.exceptions import OverloadError, ServerClosedError
from repro.obs import (
    emit_event,
    mark_ready,
    metrics,
    register_status_section,
    unregister_status_section,
)
from repro.resilience import BatchResult, Deadline, RetryPolicy
from repro.server.cache import HotQueryCaches, cached_view, model_fingerprint
from repro.server.config import ServerConfig
from repro.server.queue import RequestQueue
from repro.serving import AdmissionController, AdmissionPolicy, AdmissionTicket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summarizer import STMaker
    from repro.trajectory import RawTrajectory, SanitizerConfig

#: Sentinel: "caller did not pass a deadline, use the config default".
_UNSET = object()


class RequestHandle:
    """The caller's side of one submitted request (a minimal future).

    ``result()`` blocks until the consumer settles the request, then
    returns its :class:`~repro.resilience.BatchResult` or re-raises the
    server-side error (strict-mode failures, abandonment on a
    non-draining stop).  Exactly one of result/error is ever set — the
    soak suite asserts no response is lost or delivered twice.
    """

    __slots__ = (
        "request_id", "tenant", "n_items",
        "queue_wait_s", "service_s",
        "_event", "_result", "_error",
    )

    def __init__(self, request_id: str, tenant: str, n_items: int) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.n_items = n_items
        #: Seconds between enqueue and consumer pickup (set at pickup).
        self.queue_wait_s: float | None = None
        #: Seconds the consumer spent serving (set on completion).
        self.service_s: float | None = None
        self._event = threading.Event()
        self._result: BatchResult | None = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> BatchResult:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done within {timeout}s"
            )
        return self._error

    def _resolve(self, result: BatchResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass(slots=True)
class _QueuedRequest:
    """Everything a consumer needs to serve one request."""

    handle: RequestHandle
    items: list
    k: int | None
    sanitize: bool
    sanitizer_config: "SanitizerConfig | None"
    strict: bool
    retry: RetryPolicy | None
    sleeper: Callable[[float], None]
    deadline_s: float | None
    deadline: Deadline
    ticket: AdmissionTicket
    enqueued_s: float = field(default_factory=time.perf_counter)


class SummarizationServer:
    """A long-lived serving front-end over one trained model.

    Lifecycle: build → :meth:`start` → :meth:`submit` any number of times
    (from any thread) → :meth:`stop`.  Usable as a context manager.  See
    the module docstring and ``docs/SERVING.md`` ("Request front-end")
    for the queue/fairness/deadline semantics.
    """

    def __init__(
        self, stmaker: "STMaker", config: ServerConfig | None = None
    ) -> None:
        self.config = config or ServerConfig()
        self._model = stmaker
        self.caches = HotQueryCaches.for_model(
            stmaker,
            route_capacity=self.config.route_cache_size,
            anchor_capacity=self.config.anchor_cache_size,
        )
        self._view = cached_view(stmaker, self.caches)
        self._queue: RequestQueue[_QueuedRequest] = RequestQueue(
            self.config.max_queue_requests,
            weights=self.config.tenant_weights,
        )
        self.admission = AdmissionController(
            AdmissionPolicy(
                max_queued_items=self.config.max_queued_items,
                shed=self.config.shed,
                degrade_k=self.config.degrade_k,
                bypass_priority=self.config.bypass_priority,
            ),
            tenant_budgets=dict(self.config.tenant_budgets),
        )
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._running = False
        self._stopped = False
        self._gauge_tenants: set[str] = set()
        self._ids = itertools.count(1)
        self._submitted = 0
        self._served = 0
        self._failed = 0
        self._shed = 0
        self._in_flight = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "SummarizationServer":
        """Start the consumer threads and register the ops surface.

        One-shot: a server that has been :meth:`stop`-ped cannot be
        restarted (its request queue is closed for good) — build a fresh
        :class:`SummarizationServer` instead.
        """
        with self._lock:
            if self._running:
                return self
            if self._stopped:
                raise ServerClosedError(
                    "server cannot be restarted after stop(); build a new "
                    "SummarizationServer"
                )
            self._running = True
        self._threads = [
            threading.Thread(
                target=self._consume,
                name=f"repro-server-consumer-{i}",
                daemon=True,
            )
            for i in range(self.config.consumers)
        ]
        for thread in self._threads:
            thread.start()
        register_status_section("server", self.status_section)
        metrics().gauge("server.up").set(1.0)
        mark_ready(True)
        return self

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work; finish (or abandon) the backlog and join.

        ``drain=True`` serves every already-queued request before the
        consumers exit.  ``drain=False`` fails the backlog immediately:
        each abandoned handle raises a typed
        :class:`~repro.exceptions.ServerClosedError` — never a hang —
        and its admission ticket is released.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
            self._stopped = True
        if not drain:
            for _tenant, entry in self._queue.drain():
                entry.ticket.release()
                entry.handle._fail(ServerClosedError(
                    f"server stopped before request "
                    f"{entry.handle.request_id} was served"
                ))
                with self._lock:
                    self._failed += 1
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        unregister_status_section("server")
        metrics().gauge("server.up").set(0.0)
        mark_ready(False)
        self._publish_queue_gauges()

    def __enter__(self) -> "SummarizationServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def running(self) -> bool:
        with self._lock:
            return self._running

    # -- intake ------------------------------------------------------------------

    def submit(
        self,
        items: Iterable["RawTrajectory"],
        *,
        tenant: str | None = None,
        priority: int = 0,
        k: int | None = None,
        deadline_s: float | None | object = _UNSET,
        sanitize: bool = True,
        sanitizer_config: "SanitizerConfig | None" = None,
        strict: bool = False,
        retry: RetryPolicy | None = None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> RequestHandle:
        """Admit and enqueue one request; returns its handle immediately.

        Raises :class:`~repro.exceptions.OverloadError` when admission
        sheds it (item budgets) or the request queue is full, and
        :class:`~repro.exceptions.ServerClosedError` when the server is
        not running.  The serving keyword arguments mirror
        :meth:`~repro.core.STMaker.summarize_many` — same names, same
        semantics — which is what the differential suite holds the
        server to.
        """
        if not self.running:
            raise ServerClosedError(
                "server is not running; call start() (or use it as a "
                "context manager) before submit()"
            )
        items = list(items)
        tenant = tenant or self.config.default_tenant
        effective_deadline = (
            self.config.tenant_deadline_s.get(
                tenant, self.config.default_deadline_s
            )
            if deadline_s is _UNSET
            else deadline_s
        )
        # Validate the deadline (Deadline raises ConfigError on a negative
        # budget) *before* taking an admission ticket — failing after
        # admit() would leak the ticket and permanently eat queued-item
        # budget.
        deadline = Deadline(effective_deadline)
        try:
            ticket = self.admission.admit(
                len(items), tenant=tenant, priority=priority
            )
        except OverloadError:
            with self._lock:
                self._shed += 1
            metrics().counter("server.requests.shed").inc()
            raise
        handle = RequestHandle(
            f"req-{next(self._ids):06d}", tenant, len(items)
        )
        entry = _QueuedRequest(
            handle=handle, items=items, k=k,
            sanitize=sanitize, sanitizer_config=sanitizer_config,
            strict=strict, retry=retry, sleeper=sleeper,
            deadline_s=effective_deadline,
            deadline=deadline,
            ticket=ticket,
        )
        try:
            depth = self._queue.put(tenant, entry)
        except (OverloadError, ServerClosedError) as exc:
            ticket.release()
            if isinstance(exc, OverloadError):
                with self._lock:
                    self._shed += 1
                metrics().counter("server.requests.shed").inc()
                emit_event(
                    "load_shed", action="queue_full", tenant=tenant,
                    items=len(items), reason=str(exc),
                )
            raise
        with self._lock:
            self._submitted += 1
        metrics().counter("server.requests.submitted").inc()
        self._publish_queue_gauges()
        emit_event(
            "request_enqueued",
            request_id=handle.request_id, tenant=tenant,
            items=len(items), queue_depth=depth,
            deadline_s=effective_deadline, priority=priority,
        )
        return handle

    # -- consumer loop -----------------------------------------------------------

    def _consume(self) -> None:
        while True:
            got = self._queue.take(timeout=0.1)
            if got is None:
                if self._queue.closed:
                    return
                continue
            tenant, entry = got
            self._serve(tenant, entry)

    def _serve(self, tenant: str, entry: _QueuedRequest) -> None:
        handle = entry.handle
        started = time.perf_counter()
        handle.queue_wait_s = started - entry.enqueued_s
        with self._lock:
            self._in_flight += 1
        self._publish_queue_gauges()
        status = "ok"
        result: BatchResult | None = None
        try:
            # Chaos armed on the underlying model after this server was
            # built must still fire: sync the injector reference (shared
            # object — fire counters stay global, like with_config).
            self._view.fault_injector = self._model.fault_injector
            k = entry.k
            if entry.ticket.decision.k_override is not None:
                k = entry.ticket.decision.k_override
            remaining = (
                None if entry.deadline_s is None
                else entry.deadline.remaining_s()
            )
            result = self._view.summarize_many(
                entry.items, k=k,
                sanitize=entry.sanitize,
                sanitizer_config=entry.sanitizer_config,
                strict=entry.strict, retry=entry.retry,
                deadline_s=remaining, sleeper=entry.sleeper,
                workers=self.config.workers,
                shard_size=self.config.shard_size,
                shard_mode=self.config.shard_mode,
                executor=self.config.executor,
                breaker=self.config.breaker or None,
            )
        except Exception as exc:  # strict mode, config errors, breaker, ...
            status = type(exc).__name__
            handle._fail(exc)
            with self._lock:
                self._failed += 1
            metrics().counter("server.requests.failed").inc()
        else:
            handle._resolve(result)
            with self._lock:
                self._served += 1
            metrics().counter("server.requests.served").inc()
        finally:
            entry.ticket.release()
            with self._lock:
                self._in_flight -= 1
            handle.service_s = time.perf_counter() - started
            m = metrics()
            m.histogram("server.request.latency_ms").observe(
                (handle.queue_wait_s + handle.service_s) * 1000.0
            )
            m.histogram("server.request.queue_wait_ms").observe(
                handle.queue_wait_s * 1000.0
            )
            emit_event(
                "request_done",
                request_id=handle.request_id, tenant=tenant,
                items=handle.n_items, status=status,
                ok=result.ok_count if result is not None else 0,
                quarantined=(
                    result.quarantined_count if result is not None else 0
                ),
                duration_ms=handle.service_s * 1000.0,
                queue_wait_ms=handle.queue_wait_s * 1000.0,
            )
            self._publish_queue_gauges()

    # -- model swap ---------------------------------------------------------------

    def swap_model(self, stmaker: "STMaker") -> bool:
        """Serve subsequent requests from *stmaker*.

        Returns whether the artifact fingerprint changed; when it did,
        every hot-cache entry is invalidated (and the fingerprint in
        every future cache key changes with it).  In-flight requests
        finish against the view they started with.
        """
        fingerprint = model_fingerprint(stmaker)
        changed = self.caches.invalidate(fingerprint)
        self._model = stmaker
        self._view = cached_view(stmaker, self.caches)
        return changed

    # -- introspection -------------------------------------------------------------

    def _publish_queue_gauges(self) -> None:
        m = metrics()
        m.gauge("server.queue.depth").set(float(self._queue.size))
        depths = self._queue.depths()
        with self._lock:
            # Drained tenant lanes are dropped from the queue entirely
            # (bounded tenant cardinality); zero their gauges once so
            # they don't freeze at the last published depth.
            stale = self._gauge_tenants - depths.keys()
            self._gauge_tenants = set(depths)
        for tenant in stale:
            m.gauge(f"server.queue.depth.{tenant}").set(0.0)
        for tenant, depth in depths.items():
            m.gauge(f"server.queue.depth.{tenant}").set(float(depth))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "submitted": self._submitted,
                "served": self._served,
                "failed": self._failed,
                "shed": self._shed,
                "in_flight": self._in_flight,
            }

    def status_section(self) -> dict[str, object]:
        """The ``"server"`` block of the ops ``/status`` payload."""
        return {
            "running": self.running,
            "consumers": self.config.consumers,
            "executor": self.config.executor,
            "workers": self.config.workers,
            "queue": {
                "depth": self._queue.size,
                "capacity": self._queue.capacity,
                "by_tenant": self._queue.depths(),
            },
            "requests": self.stats(),
            "admission": {
                "queued_items": self.admission.queued_items,
                "shed": self.config.shed,
            },
            "caches": self.caches.stats(),
        }
