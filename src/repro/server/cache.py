"""Bounded LRU hot caches for the serving front-end.

The paper's two expensive historical lookups are pure functions of the
trained model: the popular route between two landmarks (Sec. V-A —
a Dijkstra over the transfer network plus a shortest-path feature
extraction per hop) and the regular value of a landmark hop read off the
historical feature map (Sec. V-B).  Both are recomputed per request even
though the trained state is immutable for the lifetime of a city-model
artifact; this module memoizes them behind the front door:

* :class:`LRUCache` — a thread-safe bounded least-recently-used map with
  ``server.cache.<name>.hits`` / ``.misses`` / ``.evictions`` counters
  and a ``.size`` gauge.  ``hits + misses == lookups`` holds exactly,
  under any interleaving (counted inside the lock).
* :class:`HotQueryCaches` — the pair of caches the server holds (popular
  routes, anchor history), keyed on ``(artifact_fingerprint, query)``
  and invalidated as a unit when the fingerprint changes
  (:meth:`HotQueryCaches.invalidate`).
* :func:`cached_view` — a sibling :class:`~repro.core.STMaker` sharing
  all trained state whose feature selector reads through the caches.
  Because both memoized functions are pure with respect to the trained
  state, the view is **byte-identical** to the plain model — pinned by
  ``tests/test_server_differential.py``.

The caches live parent-side: ``executor="process"`` workers rebuild the
plain model from the artifact and compute from scratch (documented in
``docs/SERVING.md``), so process-pool serving is unaffected — and still
identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.core.selection import FeatureSelector
from repro.exceptions import ConfigError
from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summarizer import STMaker

#: Sentinel distinguishing "not cached" from a cached ``None`` (the
#: feature map legitimately answers ``None`` for unseen hops).
MISS = object()


class LRUCache:
    """A thread-safe bounded least-recently-used cache.

    ``get`` returns :data:`MISS` (not ``None``) on absence so cached
    ``None`` values survive round trips.  Hit/miss/eviction counts are
    kept locally (exact, updated inside the lock) and mirrored to the
    ``server.cache.<name>.*`` metrics.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> object:
        """The cached value for *key*, or :data:`MISS`."""
        with self._lock:
            value = self._data.get(key, MISS)
            if value is MISS:
                self.misses += 1
            else:
                self._data.move_to_end(key)
                self.hits += 1
        m = metrics()
        if value is MISS:
            m.counter(f"server.cache.{self.name}.misses").inc()
        else:
            m.counter(f"server.cache.{self.name}.hits").inc()
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) *key*, evicting the LRU tail over capacity."""
        evicted = 0
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            size = len(self._data)
        m = metrics()
        if evicted:
            m.counter(f"server.cache.{self.name}.evictions").inc(evicted)
        m.gauge(f"server.cache.{self.name}.size").set(float(size))

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
        metrics().gauge(f"server.cache.{self.name}.size").set(0.0)
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def lookups(self) -> int:
        with self._lock:
            return self.hits + self.misses

    def stats(self) -> dict[str, object]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }


class HotQueryCaches:
    """The server's hot caches, keyed on ``(artifact_fingerprint, query)``.

    ``routes`` memoizes :meth:`FeatureSelector._popular_hops` — the whole
    popular-route + per-hop feature chain, the dominant per-partition
    cost — and ``anchors`` memoizes
    :meth:`~repro.routes.HistoricalFeatureMap.regular_value`.  Every key
    carries the fingerprint *captured when its view was built* (not read
    at lookup time): a view computes only from the model it wraps, so its
    entries must be keyed by that model's fingerprint even if
    :meth:`invalidate` adopts a new one mid-request — otherwise an
    in-flight request during a swap would store old-model values under
    new-fingerprint keys and poison the new model's cache.  With captured
    keys, a request racing a swap writes only under the old, already
    cleared fingerprint; those stragglers are unreachable from the new
    view and age out of the LRU.  On a fingerprint change
    :meth:`invalidate` additionally drops the dead entries so they stop
    occupying capacity.
    """

    def __init__(
        self,
        fingerprint: str,
        *,
        route_capacity: int = 256,
        anchor_capacity: int = 4096,
    ) -> None:
        self.fingerprint = fingerprint
        self.routes = LRUCache("routes", route_capacity)
        self.anchors = LRUCache("anchors", anchor_capacity)
        self.invalidations = 0

    @classmethod
    def for_model(cls, stmaker: "STMaker", **kwargs) -> "HotQueryCaches":
        """Caches fingerprinted against *stmaker*'s trained state."""
        return cls(model_fingerprint(stmaker), **kwargs)

    def invalidate(self, new_fingerprint: str) -> bool:
        """Adopt *new_fingerprint*; drop all entries if it changed.

        Returns whether anything changed.  Idempotent for the current
        fingerprint (a same-model swap keeps the warm caches).
        """
        if new_fingerprint == self.fingerprint:
            return False
        self.fingerprint = new_fingerprint
        self.routes.clear()
        self.anchors.clear()
        self.invalidations += 1
        metrics().counter("server.cache.invalidations").inc()
        return True

    def stats(self) -> dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "invalidations": self.invalidations,
            "routes": self.routes.stats(),
            "anchors": self.anchors.stats(),
        }


def model_fingerprint(stmaker: "STMaker") -> str:
    """The content fingerprint of *stmaker*'s trained state.

    The same sha256-over-canonical-dict that :mod:`repro.artifact` stamps
    into published artifacts, so a server fingerprint and an artifact
    fingerprint agree for the same model.
    """
    from repro.artifact import compute_fingerprint
    from repro.core.persistence import stmaker_to_dict

    return compute_fingerprint(stmaker_to_dict(stmaker))


class _CachingFeatureMap:
    """Read-through cache in front of a :class:`HistoricalFeatureMap`.

    Only :meth:`regular_value` is memoized; everything else delegates.
    ``None`` answers (hop never observed in training) are cached too —
    they trigger the selector's observed-value fallback every time, so
    recomputing them would be pure waste.

    *fingerprint* is the identity of the wrapped model, captured at
    construction — never re-read from the (shared, swappable) caches, so
    a request in flight across :meth:`HotQueryCaches.invalidate` can only
    write under the fingerprint its values were computed from.
    """

    __slots__ = ("_base", "_caches", "_fingerprint")

    def __init__(self, base, caches: HotQueryCaches, fingerprint: str) -> None:
        self._base = base
        self._caches = caches
        self._fingerprint = fingerprint

    def regular_value(self, src: int, dst: int, key: str):
        caches = self._caches
        cache_key = (self._fingerprint, src, dst, key)
        value = caches.anchors.get(cache_key)
        if value is MISS:
            value = self._base.regular_value(src, dst, key)
            caches.anchors.put(cache_key, value)
        return value

    def __getattr__(self, name):
        return getattr(self._base, name)


class CachingFeatureSelector(FeatureSelector):
    """A :class:`FeatureSelector` that reads hot queries through the caches.

    Both overrides are pure functions of immutable trained state, so the
    cached answers are exactly what the base class would recompute —
    the summaries stay byte-identical.  The fingerprint in every key is
    snapshotted at construction (see :class:`_CachingFeatureMap`), so a
    selector outlived by a model swap keeps writing under the fingerprint
    of the model it actually reads.
    """

    def __init__(self, base: FeatureSelector, caches: HotQueryCaches) -> None:
        fingerprint = caches.fingerprint
        super().__init__(
            base.registry, base.config, base.pipeline, base.popular_routes,
            _CachingFeatureMap(base.feature_map, caches, fingerprint),
            base.landmarks,
        )
        self.caches = caches
        self._fingerprint = fingerprint

    def _popular_hops(self, src: int, dst: int):
        key = (self._fingerprint, src, dst)
        hops = self.caches.routes.get(key)
        if hops is MISS:
            hops = super()._popular_hops(src, dst)
            self.caches.routes.put(key, hops)
        return hops


def cached_view(stmaker: "STMaker", caches: HotQueryCaches) -> "STMaker":
    """A sibling of *stmaker* whose selector reads through *caches*.

    Cheap (shares every trained structure, like
    :meth:`~repro.core.STMaker.with_config`); only the feature selector is
    replaced.  The view's ``feature_map`` attribute stays the plain map,
    so artifact persistence — and therefore ``executor="process"``
    serving — sees the identical model.
    """
    view = stmaker.with_config(stmaker.config)
    view.selector = CachingFeatureSelector(view.selector, caches)
    return view
