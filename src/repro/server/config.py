"""Declarative configuration for the summarization server.

One frozen dataclass carries everything the front-end needs: queue
bounds and tenant weights, deadline defaults, the serving-path knobs it
forwards to :meth:`~repro.core.STMaker.summarize_many` (workers, shard
size/mode, executor), hot-cache capacities, and the admission budget it
builds its :class:`~repro.serving.AdmissionController` from.  Validation
happens at construction, so a bad config fails at server build time, not
on the first request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import ConfigError
from repro.serving import EXECUTORS, SHARD_MODES, SHED_POLICIES


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Everything a :class:`~repro.server.SummarizationServer` is built from.

    Queue semantics: requests are FIFO within a tenant and drained by
    weighted round-robin across tenants (``tenant_weights``; unlisted
    tenants weigh ``1``).  ``max_queue_requests`` bounds the *queue* in
    requests; ``max_queued_items`` bounds *admission* in items (the same
    budget :class:`~repro.serving.AdmissionPolicy` enforces for direct
    ``summarize_many`` callers), with per-tenant ``tenant_budgets`` on
    top.  ``default_deadline_s`` / ``tenant_deadline_s`` start counting
    at enqueue — time spent queued eats the request's budget.
    """

    #: Max requests queued across all tenants; submits beyond raise
    #: :class:`~repro.exceptions.OverloadError`.
    max_queue_requests: int = 64
    #: Weighted-round-robin weight per tenant (missing tenants weigh 1).
    tenant_weights: Mapping[str, int] = field(default_factory=dict)
    #: Tenant a request without one is accounted to.
    default_tenant: str = "default"
    #: Per-request deadline budget (seconds from enqueue); ``None`` = none.
    default_deadline_s: float | None = None
    #: Per-tenant overrides of ``default_deadline_s``.
    tenant_deadline_s: Mapping[str, float] = field(default_factory=dict)
    #: Consumer threads draining the queue.
    consumers: int = 1
    #: ``summarize_many`` pool shape used to serve each request.
    workers: int = 1
    shard_size: int | None = None
    shard_mode: str = "balanced"
    executor: str = "thread"
    #: Hot-cache capacities (see :mod:`repro.server.cache`).
    route_cache_size: int = 256
    anchor_cache_size: int = 4096
    #: Admission budget in items (``None`` = unbounded globally).
    max_queued_items: int | None = None
    #: Per-tenant admission budgets in items.
    tenant_budgets: Mapping[str, int] = field(default_factory=dict)
    #: What to do with work over budget: ``"reject"`` or ``"degrade"``.
    shed: str = "reject"
    #: Partition count served under ``shed="degrade"``.
    degrade_k: int = 1
    #: Requests at or above this priority skip admission budgets.
    bypass_priority: int | None = None
    #: Route each request through the ``serving.<executor>`` circuit
    #: breaker (:func:`repro.serving.get_breaker`).
    breaker: bool = False

    def __post_init__(self) -> None:
        if self.max_queue_requests < 1:
            raise ConfigError(
                f"max_queue_requests must be >= 1, got {self.max_queue_requests}"
            )
        if self.consumers < 1:
            raise ConfigError(f"consumers must be >= 1, got {self.consumers}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in EXECUTORS:
            raise ConfigError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}"
            )
        if self.shard_mode not in SHARD_MODES:
            raise ConfigError(
                f"unknown shard_mode {self.shard_mode!r}; "
                f"expected one of {SHARD_MODES}"
            )
        if self.shed not in SHED_POLICIES:
            raise ConfigError(
                f"unknown shed policy {self.shed!r}; "
                f"expected one of {SHED_POLICIES}"
            )
        for tenant, weight in self.tenant_weights.items():
            if weight < 1:
                raise ConfigError(
                    f"tenant weight must be >= 1, got {weight} for {tenant!r}"
                )
        if self.default_deadline_s is not None and self.default_deadline_s < 0.0:
            raise ConfigError(
                f"default_deadline_s must be >= 0, got {self.default_deadline_s}"
            )
        for tenant, deadline in self.tenant_deadline_s.items():
            if deadline < 0.0:
                raise ConfigError(
                    f"tenant deadline must be >= 0, got {deadline} for {tenant!r}"
                )
        if self.route_cache_size < 1 or self.anchor_cache_size < 1:
            raise ConfigError(
                "cache sizes must be >= 1, got "
                f"routes={self.route_cache_size} anchors={self.anchor_cache_size}"
            )
