"""Bounded multi-tenant request queue with weighted round-robin draining.

The ordering contract, pinned by ``tests/test_server_properties.py``:

* **FIFO within a tenant** — each tenant has its own lane (a deque);
  requests from one tenant are served in submission order, always.
* **Weighted round-robin across tenants** — the consumer cycles lanes in
  registration order; a tenant with weight *w* is served at most *w*
  consecutive requests before the cycle moves on, so no tenant starves
  however fast another submits.  A drained lane is dropped on the spot
  (the tenant rejoins at the back of the rotation on its next ``put``),
  so idle tenants cost no memory, no WRR scan time, and no gauges —
  tenant cardinality is bounded by the queued backlog, not by history.
* **Bounded** — ``put`` over capacity raises a typed
  :class:`~repro.exceptions.OverloadError` instead of growing without
  bound (back-pressure, not an outage).

``close()`` flips the queue into drain mode: ``put`` raises
:class:`~repro.exceptions.ServerClosedError`, while ``take`` keeps
handing out the backlog and returns ``None`` once it is empty — how the
server's consumers finish gracefully.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Generic, Mapping, TypeVar

from repro.exceptions import ConfigError, OverloadError, ServerClosedError, ServingError

T = TypeVar("T")


class RequestQueue(Generic[T]):
    """Per-tenant FIFO lanes drained by weighted round-robin (thread-safe)."""

    def __init__(
        self,
        capacity: int,
        *,
        weights: Mapping[str, int] | None = None,
        default_weight: int = 1,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        if default_weight < 1:
            raise ConfigError(
                f"default_weight must be >= 1, got {default_weight}"
            )
        self.capacity = capacity
        self._weights = dict(weights or {})
        for tenant, weight in self._weights.items():
            if weight < 1:
                raise ConfigError(
                    f"tenant weight must be >= 1, got {weight} for {tenant!r}"
                )
        self._default_weight = default_weight
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._lanes: OrderedDict[str, deque[T]] = OrderedDict()
        self._rotation: list[str] = []
        self._cursor = 0       # index into _rotation: whose turn it is
        self._credits = 0      # requests served from that tenant this turn
        self._size = 0
        self._closed = False

    def weight(self, tenant: str) -> int:
        return self._weights.get(tenant, self._default_weight)

    # -- producer side ----------------------------------------------------------

    def put(self, tenant: str, entry: T) -> int:
        """Append *entry* to *tenant*'s lane; returns the new total depth.

        Raises :class:`OverloadError` at capacity and
        :class:`ServerClosedError` after :meth:`close`.
        """
        with self._not_empty:
            if self._closed:
                raise ServerClosedError(
                    "request queue is closed; the server is stopping"
                )
            if self._size >= self.capacity:
                raise OverloadError(
                    f"request queue is full ({self._size}/{self.capacity} "
                    f"requests); retry later or raise max_queue_requests"
                )
            lane = self._lanes.get(tenant)
            if lane is None:
                lane = deque()
                self._lanes[tenant] = lane
                self._rotation.append(tenant)
            lane.append(entry)
            self._size += 1
            self._not_empty.notify()
            return self._size

    # -- consumer side ----------------------------------------------------------

    def take(self, timeout: float | None = None) -> tuple[str, T] | None:
        """The next ``(tenant, entry)`` under weighted round-robin.

        Blocks up to *timeout* seconds (forever when ``None``) for work.
        Returns ``None`` on timeout, or immediately once the queue is
        closed **and** drained.
        """
        with self._not_empty:
            while True:
                if self._size > 0:
                    return self._pop_wrr()
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    def _pop_wrr(self) -> tuple[str, T]:
        """One WRR scheduling step; caller holds the lock and size > 0."""
        n = len(self._rotation)
        for _ in range(2 * n + 1):
            if self._cursor >= n:
                self._cursor = 0
            tenant = self._rotation[self._cursor]
            lane = self._lanes[tenant]
            if lane and self._credits < self.weight(tenant):
                self._credits += 1
                self._size -= 1
                entry = lane.popleft()
                if not lane:
                    # Drop the drained lane so tenant cardinality stays
                    # bounded (memory, the WRR scan, per-tenant gauges).
                    # The rotation slot at _cursor disappears: the next
                    # tenant slides into it, starting a fresh turn.
                    del self._lanes[tenant]
                    self._rotation.pop(self._cursor)
                    self._credits = 0
                return tenant, entry
            # This tenant's turn is over (lane empty, or weight spent):
            # the next tenant starts with a fresh credit allowance.
            self._cursor += 1
            self._credits = 0
        raise ServingError(
            "weighted round-robin found no queued entry despite "
            f"size={self._size}"
        )  # pragma: no cover - internal invariant

    def drain(self) -> list[tuple[str, T]]:
        """Atomically remove and return every queued entry (stop path)."""
        with self._not_empty:
            out: list[tuple[str, T]] = []
            while self._size > 0:
                out.append(self._pop_wrr())
            return out

    # -- lifecycle / introspection ----------------------------------------------

    def close(self) -> None:
        """Refuse new entries; wake blocked consumers to drain and exit."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def size(self) -> int:
        with self._lock:
            return self._size

    def depths(self) -> dict[str, int]:
        """Queued requests per tenant (tenants with a non-empty lane).

        Drained lanes are removed eagerly — an idle tenant costs nothing
        here, in the WRR rotation, or in the per-tenant depth gauges.
        """
        with self._lock:
            return {tenant: len(lane) for tenant, lane in self._lanes.items()}

    def __len__(self) -> int:
        return self.size
