"""Moving-feature extraction: speed, stay points, U-turns, speed changes.

Moving features are extracted from the *sample-based* (raw) trajectory, not
the symbolic one (paper Sec. III-B).  Besides the numeric feature values,
the detectors return by-products — where the stay points happened and for
how long, where the U-turns occurred — which the templates embed into the
summary text (Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import FeatureError
from repro.geo import GeoPoint, LocalProjector, bearing_deg, heading_change_deg
from repro.trajectory import TrajectoryPoint, average_speed_ms, instantaneous_speeds_ms


@dataclass(frozen=True, slots=True)
class StayPoint:
    """A place where the object lingered: centre and dwell interval."""

    center: GeoPoint
    t_start: float
    t_end: float

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True, slots=True)
class StayPointConfig:
    """Stay-point detection parameters (Li et al. / Zheng et al. style)."""

    radius_m: float = 40.0
    min_duration_s: float = 45.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0 or self.min_duration_s <= 0.0:
            raise FeatureError("stay-point radius and duration must be positive")


def detect_stay_points(
    points: Sequence[TrajectoryPoint],
    projector: LocalProjector,
    config: StayPointConfig | None = None,
) -> list[StayPoint]:
    """Stay points of a sample sequence.

    Classic two-pointer sweep: starting at anchor ``i``, extend ``j`` while
    every sample stays within ``radius_m`` of sample ``i``; if the dwell
    time reaches ``min_duration_s`` the window becomes a stay point and the
    sweep restarts after it.
    """
    config = config or StayPointConfig()
    out: list[StayPoint] = []
    n = len(points)
    i = 0
    while i < n - 1:
        j = i + 1
        while j < n and (
            projector.distance_m(points[i].point, points[j].point) <= config.radius_m
        ):
            j += 1
        duration = points[j - 1].t - points[i].t
        if duration >= config.min_duration_s and j - 1 > i:
            xs, ys = zip(*(projector.to_xy(p.point) for p in points[i:j]))
            center = projector.to_point(sum(xs) / len(xs), sum(ys) / len(ys))
            out.append(StayPoint(center, points[i].t, points[j - 1].t))
            i = j
        else:
            i += 1
    return out


@dataclass(frozen=True, slots=True)
class UTurn:
    """A sharp direction reversal: where and when it happened."""

    location: GeoPoint
    t: float
    heading_change_deg: float


@dataclass(frozen=True, slots=True)
class UTurnConfig:
    """U-turn detection parameters."""

    #: Heading reversal (degrees) that qualifies as a U-turn.
    angle_threshold_deg: float = 150.0
    #: Headings are estimated over displacement windows of this length, which
    #: filters GPS jitter.
    window_m: float = 30.0
    #: Two reversals within this many seconds merge into one event.
    merge_gap_s: float = 30.0
    #: Steps shorter than this carry no heading information.
    min_step_m: float = 2.0
    #: Minimum windowed speed (m/s): below this the object is effectively
    #: parked and headings are GPS-noise artifacts.
    min_window_speed_ms: float = 1.5
    #: Positions are smoothed with a centred moving average of this many
    #: samples before heading estimation (suppresses GPS jitter).
    smoothing_samples: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.angle_threshold_deg <= 180.0:
            raise FeatureError("angle threshold must lie in (0, 180]")
        if self.window_m <= 0.0 or self.merge_gap_s < 0.0:
            raise FeatureError("window must be positive, merge gap non-negative")


def detect_u_turns(
    points: Sequence[TrajectoryPoint],
    projector: LocalProjector,
    config: UTurnConfig | None = None,
) -> list[UTurn]:
    """U-turns of a sample sequence.

    The heading at each sample is measured over a trailing displacement
    window of ``window_m`` metres; a U-turn is flagged where the windowed
    heading before and after a sample differ by at least the threshold.
    Nearby reversals (a multi-point turn) merge into a single event.
    """
    config = config or UTurnConfig()
    n = len(points)
    if n < 3:
        return []
    points = _smooth_positions(points, projector, config.smoothing_samples)

    # Windowed heading *entering* each sample and *leaving* each sample.
    def window_heading(idx: int, forward: bool) -> float | None:
        anchor = points[idx].point
        walked = 0.0
        step = 1 if forward else -1
        j = idx
        while 0 <= j + step < n:
            nxt = points[j + step]
            walked += projector.distance_m(points[j].point, nxt.point)
            j += step
            if walked >= config.window_m:
                break
        # Guard against the classic false positive at stay points: while
        # parked, GPS jitter accumulates path length but no displacement and
        # no speed, and the resulting headings are pure noise.  A genuine
        # U-turn has both a substantial net displacement across the window
        # and sustained movement through it.
        net = projector.distance_m(anchor, points[j].point)
        if net < max(config.min_step_m, 0.5 * config.window_m):
            return None
        elapsed = abs(points[j].t - points[idx].t)
        if elapsed > 0.0 and net / elapsed < config.min_window_speed_ms:
            return None
        if forward:
            return bearing_deg(anchor, points[j].point)
        return bearing_deg(points[j].point, anchor)

    events: list[UTurn] = []
    for i in range(1, n - 1):
        before = window_heading(i, forward=False)
        after = window_heading(i, forward=True)
        if before is None or after is None:
            continue
        change = heading_change_deg(before, after)
        if change < config.angle_threshold_deg:
            continue
        if events and points[i].t - events[-1].t <= config.merge_gap_s:
            # Same physical turn: keep the sharpest sample as the event.
            if change > events[-1].heading_change_deg:
                events[-1] = UTurn(points[i].point, points[i].t, change)
            continue
        events.append(UTurn(points[i].point, points[i].t, change))
    return events


def _smooth_positions(
    points: Sequence[TrajectoryPoint],
    projector: LocalProjector,
    window: int,
) -> list[TrajectoryPoint]:
    """Centred moving average over positions; timestamps are preserved.

    Averaging ``w`` samples shrinks GPS noise by ``sqrt(w)``, which is what
    makes heading estimation usable near stay points.
    """
    if window <= 1 or len(points) < 3:
        return list(points)
    xys = [projector.to_xy(p.point) for p in points]
    half = window // 2
    out = []
    for i, p in enumerate(points):
        lo = max(0, i - half)
        hi = min(len(points), i + half + 1)
        x = sum(xy[0] for xy in xys[lo:hi]) / (hi - lo)
        y = sum(xy[1] for xy in xys[lo:hi]) / (hi - lo)
        out.append(TrajectoryPoint(projector.to_point(x, y), p.t))
    return out


@dataclass(frozen=True, slots=True)
class SpeedChangeConfig:
    """Sharp-speed-change (SpeC) detection parameters."""

    #: Minimum speed jump (m/s) between consecutive gaps to count an event.
    #: At 5-second sampling this corresponds to sustained hard braking or
    #: flooring it — routine decelerations into intersections stay below it.
    threshold_ms: float = 6.5
    #: Consecutive events within this gap merge into one.
    merge_gap_s: float = 20.0

    def __post_init__(self) -> None:
        if self.threshold_ms <= 0.0:
            raise FeatureError("speed-change threshold must be positive")


def count_speed_changes(
    points: Sequence[TrajectoryPoint],
    projector: LocalProjector,
    config: SpeedChangeConfig | None = None,
) -> int:
    """Number of sharp accelerations/brakes along the sample sequence."""
    config = config or SpeedChangeConfig()
    speeds = instantaneous_speeds_ms(points, projector)
    if len(speeds) < 2:
        return 0
    count = 0
    last_event_t = -float("inf")
    for k in range(1, len(speeds)):
        if abs(speeds[k] - speeds[k - 1]) >= config.threshold_ms:
            t = points[k].t
            if t - last_event_t > config.merge_gap_s:
                count += 1
            last_event_t = t
    return count


@dataclass(frozen=True, slots=True)
class MovingFeatures:
    """Moving-feature values and template by-products for one segment."""

    speed_kmh: float
    stay_points: list[StayPoint]
    u_turns: list[UTurn]
    speed_change_count: int

    @property
    def stay_count(self) -> int:
        return len(self.stay_points)

    @property
    def stay_total_s(self) -> float:
        return sum(s.duration_s for s in self.stay_points)

    @property
    def u_turn_count(self) -> int:
        return len(self.u_turns)


@dataclass(frozen=True, slots=True)
class MovingFeatureExtractor:
    """Bundles the moving-feature detectors behind one call."""

    projector: LocalProjector
    stay_config: StayPointConfig = field(default_factory=StayPointConfig)
    u_turn_config: UTurnConfig = field(default_factory=UTurnConfig)
    speed_change_config: SpeedChangeConfig = field(default_factory=SpeedChangeConfig)

    def extract(self, points: Sequence[TrajectoryPoint]) -> MovingFeatures:
        """Moving features of one segment's raw samples."""
        speed_kmh = average_speed_ms(points, self.projector) * 3.6
        return MovingFeatures(
            speed_kmh=speed_kmh,
            stay_points=detect_stay_points(points, self.projector, self.stay_config),
            u_turns=detect_u_turns(points, self.projector, self.u_turn_config),
            speed_change_count=count_speed_changes(
                points, self.projector, self.speed_change_config
            ),
        )
