"""Per-segment feature vectors and normalization (paper Sec. IV-B).

Before the partitioner compares segments, every feature is normalized to
``[0, 1]`` by the largest value of that feature across the segments of the
trajectory; the normalized values form a ``|F|``-dimensional vector per
segment, laid out in registry order.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FeatureError
from repro.features.base import FeatureRegistry
from repro.features.extraction import SegmentFeatures


def feature_matrix(
    segments: list[SegmentFeatures], registry: FeatureRegistry
) -> np.ndarray:
    """Raw feature values as an ``(n_segments, n_features)`` array."""
    if not segments:
        raise FeatureError("cannot build a feature matrix from zero segments")
    keys = registry.keys()
    rows = []
    for seg in segments:
        try:
            rows.append([seg.values[key] for key in keys])
        except KeyError as exc:
            raise FeatureError(f"segment missing feature {exc}") from exc
    return np.asarray(rows, dtype=float)


def normalize_matrix(matrix: np.ndarray) -> np.ndarray:
    """Normalize each column by its maximum absolute value.

    Columns that are entirely zero stay zero (the feature is constant and
    carries no contrast on this trajectory).
    """
    if matrix.ndim != 2:
        raise FeatureError(f"expected a 2-D matrix, got shape {matrix.shape}")
    scale = np.abs(matrix).max(axis=0)
    safe = np.where(scale == 0.0, 1.0, scale)
    return matrix / safe


def normalized_vectors(
    segments: list[SegmentFeatures], registry: FeatureRegistry
) -> np.ndarray:
    """Normalized per-segment feature vectors, registry order."""
    return normalize_matrix(feature_matrix(segments, registry))


def normalize_sequence(values: list[float]) -> list[float]:
    """Normalize a feature-value sequence by its maximum absolute value.

    This is the ``norm(.)`` of Sec. V-A applied to a partition's feature
    sequence; an all-zero sequence is returned unchanged.
    """
    if not values:
        return []
    scale = max(abs(v) for v in values)
    if scale == 0.0:
        return list(values)
    return [v / scale for v in values]
