"""Per-segment feature extraction pipeline.

Given a raw trajectory and its calibrated symbolic trajectory, the pipeline
produces, for every trajectory segment, the numeric value of every
registered feature (``f(TS)`` in the paper) plus the by-products the
templates need.  Categorical features are encoded as their integer codes,
exactly as the paper assigns integers to categorical values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FeatureError, MapMatchError
from repro.features.base import (
    GRADE_OF_ROAD,
    ROAD_WIDTH,
    SPEED,
    SPEED_CHANGES,
    STAY_POINTS,
    TRAFFIC_DIRECTION,
    U_TURNS,
    FeatureKind,
    FeatureRegistry,
    default_registry,
)
from repro.features.moving import MovingFeatureExtractor, MovingFeatures
from repro.features.routing import RoutingFeatureComputer, RoutingFeatures
from repro.landmarks import LandmarkIndex
from repro.obs import metrics, span
from repro.roadnet import RoadNetwork
from repro.trajectory import (
    RawTrajectory,
    SymbolicTrajectory,
    TrajectoryPoint,
    TrajectorySegment,
)


@dataclass(frozen=True, slots=True)
class ExtractionContext:
    """What a user-defined feature extractor gets to look at.

    ``routing`` is ``None`` during historical-feature-map training, where
    only moving features are recorded; moving-feature extractors must not
    depend on it.
    """

    points: list[TrajectoryPoint]
    routing: RoutingFeatures | None
    moving: MovingFeatures
    network: RoadNetwork


@dataclass(frozen=True, slots=True)
class SegmentFeatures:
    """All feature values (and extraction by-products) of one segment."""

    segment: TrajectorySegment
    values: dict[str, float]
    routing: RoutingFeatures
    moving: MovingFeatures


class FeaturePipeline:
    """Extracts every registered feature for every segment of a trajectory."""

    def __init__(
        self,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        registry: FeatureRegistry | None = None,
        moving_extractor: MovingFeatureExtractor | None = None,
        routing_computer: RoutingFeatureComputer | None = None,
    ) -> None:
        self.network = network
        self.landmarks = landmarks
        self.registry = registry or default_registry()
        self.moving_extractor = moving_extractor or MovingFeatureExtractor(
            network.projector
        )
        self.routing_computer = routing_computer or RoutingFeatureComputer(network)

    def extract(
        self, raw: RawTrajectory, symbolic: SymbolicTrajectory
    ) -> list[SegmentFeatures]:
        """Feature values for every segment of *symbolic*."""
        with span("extract_features", segments=symbolic.segment_count):
            out = [self.extract_segment(raw, seg) for seg in symbolic.segments()]
        metrics().counter("features.segments_extracted").inc(len(out))
        return out

    def extract_segment(
        self, raw: RawTrajectory, segment: TrajectorySegment
    ) -> SegmentFeatures:
        """Feature values for one segment.

        Moving features are computed on the raw samples inside the segment's
        time window; routing features come from map-matching those samples,
        falling back to the network shortest path between the two landmarks
        when the window is too sparse to match.
        """
        points = raw.slice_time(segment.t_start, segment.t_end)
        points = self._ensure_endpoints(points, segment)
        moving = self.moving_extractor.extract(points)
        routing = self._segment_routing(points, segment)
        values = self._encode(points, routing, moving)
        return SegmentFeatures(segment, values, routing, moving)

    def extract_moving(
        self, raw: RawTrajectory, segment: TrajectorySegment
    ) -> tuple[dict[str, float], MovingFeatures]:
        """Moving-feature values only (no map matching) for one segment.

        This is the fast path used when building the historical feature map
        over tens of thousands of training segments, where routing features
        are not needed.
        """
        points = raw.slice_time(segment.t_start, segment.t_end)
        points = self._ensure_endpoints(points, segment)
        moving = self.moving_extractor.extract(points)
        known: dict[str, float] = {
            SPEED: moving.speed_kmh,
            STAY_POINTS: float(moving.stay_count),
            U_TURNS: float(moving.u_turn_count),
            SPEED_CHANGES: float(moving.speed_change_count),
        }
        values: dict[str, float] = {}
        context: ExtractionContext | None = None
        for definition in self.registry:
            key = definition.key
            if definition.kind is not FeatureKind.MOVING:
                continue
            if key in known:
                values[key] = known[key]
                continue
            if definition.extractor is None:
                raise FeatureError(f"moving feature {key!r} has no extractor")
            if context is None:
                context = ExtractionContext(points, None, moving, self.network)
            values[key] = float(definition.extractor(context))
        return values, moving

    def hop_features(self, src_landmark: int, dst_landmark: int) -> RoutingFeatures:
        """Routing features of the presumed road connection of one hop.

        Used for popular-route segments, where no raw samples exist.
        """
        a = self.landmarks.get(src_landmark).point
        b = self.landmarks.get(dst_landmark).point
        return self.routing_computer.between_points(a, b)

    # -- internals -------------------------------------------------------------

    def _ensure_endpoints(
        self, points: list[TrajectoryPoint], segment: TrajectorySegment
    ) -> list[TrajectoryPoint]:
        """Guarantee at least two samples spanning the segment window.

        Sparse sampling can leave a window with fewer than two raw samples;
        the landmark anchor positions themselves then stand in, which keeps
        speed well-defined (landmark distance over segment duration).
        """
        if len(points) >= 2:
            return points
        start = TrajectoryPoint(
            self.landmarks.get(segment.start_landmark).point, segment.t_start
        )
        end = TrajectoryPoint(
            self.landmarks.get(segment.end_landmark).point, segment.t_end
        )
        if len(points) == 1:
            mid = points[0]
            if segment.t_start < mid.t < segment.t_end:
                return [start, mid, end]
        return [start, end]

    def _segment_routing(
        self, points: list[TrajectoryPoint], segment: TrajectorySegment
    ) -> RoutingFeatures:
        try:
            return self.routing_computer.from_samples(points)
        except (MapMatchError, FeatureError):
            return self.hop_features(segment.start_landmark, segment.end_landmark)

    def _encode(
        self,
        points: list[TrajectoryPoint],
        routing: RoutingFeatures,
        moving: MovingFeatures,
    ) -> dict[str, float]:
        """Numeric value of every registered feature, in registry order."""
        known: dict[str, float] = {
            GRADE_OF_ROAD: float(int(routing.grade)),
            ROAD_WIDTH: routing.width_m,
            TRAFFIC_DIRECTION: float(int(routing.direction)),
            SPEED: moving.speed_kmh,
            STAY_POINTS: float(moving.stay_count),
            U_TURNS: float(moving.u_turn_count),
            SPEED_CHANGES: float(moving.speed_change_count),
        }
        values = {}
        context: ExtractionContext | None = None
        for definition in self.registry:
            key = definition.key
            if key in known:
                values[key] = known[key]
                continue
            if definition.extractor is None:
                raise FeatureError(
                    f"feature {key!r} has no built-in extractor and no "
                    "user-defined one; see FeatureDefinition.extractor"
                )
            if context is None:
                context = ExtractionContext(points, routing, moving, self.network)
            values[key] = float(definition.extractor(context))
        return values
