"""Routing-feature extraction: grade of road, road width, traffic direction.

Routing features come from the digital map (paper Sec. III-A).  For an
*observed* trajectory segment they are aggregated over the edges found by
map matching, weighted by travelled length so a brushed intersection edge
cannot dominate.  For a *hypothetical* hop (e.g. a popular-route segment)
they are aggregated over the network shortest path between the two
landmarks — the roads the historical traffic is presumed to use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import FeatureError, NoPathError
from repro.geo import GeoPoint
from repro.mapmatch import HMMMapMatcher, MapMatchConfig
from repro.roadnet import RoadEdge, RoadGrade, RoadNetwork, TrafficDirection, dijkstra
from repro.trajectory import TrajectoryPoint


@dataclass(frozen=True, slots=True)
class RoutingFeatures:
    """Routing-feature values and template by-products for one segment."""

    grade: RoadGrade
    width_m: float
    direction: TrafficDirection
    #: Name of the length-dominant road (used in summary phrases).
    road_name: str


def aggregate_edges(weighted_edges: list[tuple[RoadEdge, float]]) -> RoutingFeatures:
    """Collapse length-weighted edges into one set of routing features.

    Grade and direction are the length-dominant category; width is the
    length-weighted mean; the road name is the name travelled the longest.
    Zero-weight touches (intersection brushes) get a tiny epsilon weight so
    a degenerate all-zero input still resolves deterministically.
    """
    if not weighted_edges:
        raise FeatureError("cannot aggregate an empty edge list")
    eps = 1e-9
    grade_weight: dict[RoadGrade, float] = {}
    direction_weight: dict[TrafficDirection, float] = {}
    name_weight: dict[str, float] = {}
    width_sum = 0.0
    total = 0.0
    for edge, weight in weighted_edges:
        w = max(weight, eps)
        grade_weight[edge.grade] = grade_weight.get(edge.grade, 0.0) + w
        direction_weight[edge.direction] = direction_weight.get(edge.direction, 0.0) + w
        name_weight[edge.name] = name_weight.get(edge.name, 0.0) + w
        width_sum += edge.width_m * w
        total += w
    grade = max(grade_weight, key=lambda g: (grade_weight[g], -int(g)))
    direction = max(direction_weight, key=lambda d: (direction_weight[d], -int(d)))
    name = max(name_weight, key=lambda n: (name_weight[n], n))
    return RoutingFeatures(grade, width_sum / total, direction, name)


@dataclass
class RoutingFeatureComputer:
    """Computes routing features for observed segments and landmark hops."""

    network: RoadNetwork
    match_config: MapMatchConfig = field(default_factory=MapMatchConfig)

    def __post_init__(self) -> None:
        self._matcher = HMMMapMatcher(self.network, self.match_config)
        self._hop_cache: dict[tuple[float, float, float, float], RoutingFeatures] = {}

    def from_samples(self, points: list[TrajectoryPoint]) -> RoutingFeatures:
        """Routing features of an observed segment via map matching."""
        if len(points) < 2:
            raise FeatureError("need at least two samples to map-match a segment")
        result = self._matcher.match(points)
        return aggregate_edges(result.edge_traversals(self.network))

    def between_points(self, a: GeoPoint, b: GeoPoint) -> RoutingFeatures:
        """Routing features of the network shortest path from *a* to *b*.

        Used for hypothetical hops (popular-route segments).  Results are
        cached per coordinate pair because popular routes repeat heavily
        across a summary dataset.
        """
        key = (a.lat, a.lon, b.lat, b.lon)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        node_a = self.network.nearest_node(a)
        node_b = self.network.nearest_node(b)
        if node_a is None or node_b is None:
            raise FeatureError("landmark lies too far from the road network")
        if node_a.node_id == node_b.node_id:
            edges = self.network.incident_edges(node_a.node_id)
            if not edges:
                raise FeatureError(f"isolated node {node_a.node_id}")
            features = aggregate_edges([(edges[0], edges[0].length_m)])
        else:
            try:
                _, path = dijkstra(self.network, node_a.node_id, node_b.node_id)
            except NoPathError as exc:
                raise FeatureError(
                    f"no road path between nodes {node_a.node_id} and {node_b.node_id}"
                ) from exc
            path_edges = self.network.path_edges(path)
            features = aggregate_edges([(e, e.length_m) for e in path_edges])
        self._hop_cache[key] = features
        return features
