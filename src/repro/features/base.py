"""Feature vocabulary and registry (paper Sec. III and Sec. VI-B).

A :class:`FeatureDefinition` declares what a feature is — routing or
moving, numeric or categorical, its default weight — while extraction lives
in :mod:`repro.features.routing` / :mod:`repro.features.moving` and phrase
generation in :mod:`repro.core.templates`.  The registry is ordered; the
order defines the layout of the per-segment feature vectors used by the
partitioner (Eq. 3).

The six paper features are registered by default under the keys listed in
Sec. VII-B (GR, RW, TD, Spe, Stay, U-turn); the extension feature SpeC
(sharp speed changes, Fig. 10(b)) is available via
``default_registry(include_speed_change=True)``.  New user-defined features
follow the three-step recipe of Sec. VI-B via :meth:`FeatureRegistry.register`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Iterator

from repro.exceptions import FeatureError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.features.extraction import ExtractionContext
    from repro.features.routing import RoutingFeatures


class FeatureKind(Enum):
    """Routing features describe *where*; moving features describe *how*."""

    ROUTING = "routing"
    MOVING = "moving"


class FeatureDtype(Enum):
    """Numeric features compare by difference; categorical by (in)equality."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


# Canonical keys of the paper's features.
GRADE_OF_ROAD = "grade_of_road"
ROAD_WIDTH = "road_width"
TRAFFIC_DIRECTION = "traffic_direction"
SPEED = "speed"
STAY_POINTS = "stay_points"
U_TURNS = "u_turns"
SPEED_CHANGES = "speed_changes"  # the SpeC extension feature of Fig. 10(b)


@dataclass(frozen=True, slots=True)
class FeatureDefinition:
    """Declaration of one trajectory feature.

    User-defined features (the Sec. VI-B extension recipe) supply the three
    optional callables:

    * ``extractor`` — value of the feature on one observed segment;
    * ``hop_value`` — regular value of a *routing* feature on a hypothetical
      landmark hop (its reading off the digital map); moving features get
      their regular values from the historical feature map automatically;
    * ``phrase`` — template function turning a
      :class:`repro.core.types.FeatureAssessment` into summary text.
    """

    key: str
    short_label: str
    kind: FeatureKind
    dtype: FeatureDtype
    default_weight: float = 1.0
    description: str = ""
    extractor: Callable[["ExtractionContext"], float] | None = None
    hop_value: Callable[["RoutingFeatures"], float] | None = None
    phrase: Callable[[object], str] | None = None

    def __post_init__(self) -> None:
        if not self.key:
            raise FeatureError("feature key must be non-empty")
        if self.default_weight < 0.0:
            raise FeatureError(f"feature weight must be non-negative: {self.key}")


class FeatureRegistry:
    """Ordered collection of feature definitions."""

    def __init__(self, definitions: list[FeatureDefinition] | None = None) -> None:
        self._defs: dict[str, FeatureDefinition] = {}
        for definition in definitions or []:
            self.register(definition)

    def register(self, definition: FeatureDefinition) -> None:
        """Add a feature; duplicate keys are rejected."""
        if definition.key in self._defs:
            raise FeatureError(f"feature {definition.key!r} already registered")
        self._defs[definition.key] = definition

    def get(self, key: str) -> FeatureDefinition:
        """Definition by key; raises :class:`FeatureError` if unknown."""
        try:
            return self._defs[key]
        except KeyError:
            raise FeatureError(f"unknown feature {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._defs

    def __iter__(self) -> Iterator[FeatureDefinition]:
        return iter(self._defs.values())

    def __len__(self) -> int:
        return len(self._defs)

    def keys(self) -> list[str]:
        """Feature keys in registration order."""
        return list(self._defs)

    def routing_keys(self) -> list[str]:
        """Keys of routing features, in order."""
        return [d.key for d in self if d.kind is FeatureKind.ROUTING]

    def moving_keys(self) -> list[str]:
        """Keys of moving features, in order."""
        return [d.key for d in self if d.kind is FeatureKind.MOVING]

    def default_weights(self) -> dict[str, float]:
        """Feature-key → default-weight mapping."""
        return {d.key: d.default_weight for d in self}


def default_registry(include_speed_change: bool = False) -> FeatureRegistry:
    """The paper's six features, optionally plus the SpeC extension."""
    defs = [
        FeatureDefinition(
            GRADE_OF_ROAD, "GR", FeatureKind.ROUTING, FeatureDtype.CATEGORICAL,
            description="road grade 1 (highway) .. 7 (feeder road)",
        ),
        FeatureDefinition(
            ROAD_WIDTH, "RW", FeatureKind.ROUTING, FeatureDtype.NUMERIC,
            description="carriageway width in metres",
        ),
        FeatureDefinition(
            TRAFFIC_DIRECTION, "TD", FeatureKind.ROUTING, FeatureDtype.CATEGORICAL,
            description="1 = two-way road, 2 = one-way road",
        ),
        FeatureDefinition(
            SPEED, "Spe", FeatureKind.MOVING, FeatureDtype.NUMERIC,
            description="average speed in km/h",
        ),
        FeatureDefinition(
            STAY_POINTS, "Stay", FeatureKind.MOVING, FeatureDtype.NUMERIC,
            description="number of stay points",
        ),
        FeatureDefinition(
            U_TURNS, "U-turn", FeatureKind.MOVING, FeatureDtype.NUMERIC,
            description="number of U-turns",
        ),
    ]
    if include_speed_change:
        defs.append(
            FeatureDefinition(
                SPEED_CHANGES, "SpeC", FeatureKind.MOVING, FeatureDtype.NUMERIC,
                description="number of sharp speed changes",
            )
        )
    return FeatureRegistry(defs)
