"""Road attribute vocabulary: grades, traffic directions, default physics.

The paper (Sec. III-A) uses seven road grades — 1 (highway) … 7 (feeder
road) — a numeric road width and a two-valued traffic direction.  Roads with
a higher grade (smaller numeric value) have higher transport capacity, which
here translates into higher free-flow speeds and wider carriageways.
"""

from __future__ import annotations

from enum import IntEnum


class RoadGrade(IntEnum):
    """The seven road grades of the paper; smaller value = more major road."""

    HIGHWAY = 1
    EXPRESS = 2
    NATIONAL = 3
    PROVINCIAL = 4
    COUNTRY = 5
    VILLAGE = 6
    FEEDER = 7

    @property
    def display_name(self) -> str:
        """Human-readable name used in generated summaries."""
        return _GRADE_NAMES[self]

    @property
    def free_flow_speed_kmh(self) -> float:
        """Typical unimpeded speed on this grade of road, km/h."""
        return _GRADE_SPEEDS_KMH[self]

    @property
    def typical_width_m(self) -> float:
        """Typical carriageway width for this grade, metres."""
        return _GRADE_WIDTHS_M[self]


_GRADE_NAMES: dict[RoadGrade, str] = {
    RoadGrade.HIGHWAY: "highway",
    RoadGrade.EXPRESS: "express road",
    RoadGrade.NATIONAL: "national road",
    RoadGrade.PROVINCIAL: "provincial road",
    RoadGrade.COUNTRY: "country road",
    RoadGrade.VILLAGE: "village road",
    RoadGrade.FEEDER: "feeder road",
}

_GRADE_SPEEDS_KMH: dict[RoadGrade, float] = {
    RoadGrade.HIGHWAY: 100.0,
    RoadGrade.EXPRESS: 80.0,
    RoadGrade.NATIONAL: 65.0,
    RoadGrade.PROVINCIAL: 55.0,
    RoadGrade.COUNTRY: 45.0,
    RoadGrade.VILLAGE: 35.0,
    RoadGrade.FEEDER: 25.0,
}

_GRADE_WIDTHS_M: dict[RoadGrade, float] = {
    RoadGrade.HIGHWAY: 28.0,
    RoadGrade.EXPRESS: 22.0,
    RoadGrade.NATIONAL: 18.0,
    RoadGrade.PROVINCIAL: 14.0,
    RoadGrade.COUNTRY: 10.0,
    RoadGrade.VILLAGE: 7.0,
    RoadGrade.FEEDER: 5.0,
}


class TrafficDirection(IntEnum):
    """Traffic direction codes of the paper: 1 two-way, 2 one-way."""

    TWO_WAY = 1
    ONE_WAY = 2

    @property
    def display_name(self) -> str:
        """Human-readable name used in generated summaries."""
        if self is TrafficDirection.TWO_WAY:
            return "two-way road"
        return "one-way road"
