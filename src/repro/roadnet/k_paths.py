"""Yen's k-shortest loopless paths.

Route alternatives matter throughout the library: the simulator's taste
noise creates them implicitly, the popular-route miner ranks them from
history, and analyses (e.g. "how much longer is the second-best route?")
need them explicitly.  This is the classic Yen construction on top of the
library's own Dijkstra.
"""

from __future__ import annotations

import heapq

from repro.exceptions import NoPathError, RoadNetworkError
from repro.roadnet.network import NodeId, RoadEdge, RoadNetwork
from repro.roadnet.shortest_path import WeightFn, dijkstra, length_weight


def k_shortest_paths(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    k: int,
    weight: WeightFn = length_weight,
) -> list[tuple[float, list[NodeId]]]:
    """Up to *k* loopless paths from *source* to *target*, cheapest first.

    Yen's algorithm: the best path comes from Dijkstra; each further path
    is the cheapest "spur" deviation off an already accepted path, found by
    re-running Dijkstra with the conflicting edges masked.  Returns fewer
    than *k* entries when the graph does not contain that many distinct
    loopless paths.  Raises :class:`NoPathError` when even the first path
    does not exist.
    """
    if k < 1:
        raise RoadNetworkError(f"k must be at least 1, got {k}")
    cost, path = dijkstra(network, source, target, weight=weight)
    accepted: list[tuple[float, list[NodeId]]] = [(cost, path)]
    # Candidate heap keyed by cost; paths tracked as tuples for dedup.
    candidates: list[tuple[float, tuple[NodeId, ...]]] = []
    seen: set[tuple[NodeId, ...]] = {tuple(path)}

    def masked_weight(banned_edges: set[int], banned_nodes: set[NodeId]) -> WeightFn:
        def fn(edge: RoadEdge, u: NodeId, v: NodeId) -> float:
            if edge.edge_id in banned_edges or v in banned_nodes or u in banned_nodes:
                return float("inf")
            return weight(edge, u, v)

        return fn

    while len(accepted) < k:
        _, last_path = accepted[-1]
        for i in range(len(last_path) - 1):
            spur_node = last_path[i]
            root = last_path[: i + 1]
            banned_edges: set[int] = set()
            for _, prior in accepted:
                if prior[: i + 1] == root and len(prior) > i + 1:
                    edge = network.edge_between(prior[i], prior[i + 1])
                    if edge is not None:
                        banned_edges.add(edge.edge_id)
            banned_nodes = set(root[:-1])  # loopless: root interior excluded
            try:
                spur_cost, spur_path = dijkstra(
                    network, spur_node, target,
                    weight=masked_weight(banned_edges, banned_nodes),
                )
            except NoPathError:
                continue
            if spur_cost == float("inf") or float("inf") in (spur_cost,):
                continue
            total_path = root[:-1] + spur_path
            key = tuple(total_path)
            if key in seen:
                continue
            root_cost = 0.0
            feasible = True
            for u, v in zip(root, root[1:]):
                edge = network.edge_between(u, v)
                if edge is None:
                    feasible = False
                    break
                root_cost += weight(edge, u, v)
            if not feasible:
                continue
            seen.add(key)
            heapq.heappush(candidates, (root_cost + spur_cost, key))
        if not candidates:
            break
        next_cost, next_path = heapq.heappop(candidates)
        if next_cost == float("inf"):
            break
        accepted.append((next_cost, list(next_path)))
    return accepted
