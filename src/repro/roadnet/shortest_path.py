"""Shortest-path algorithms over the road network.

Implemented from scratch (binary-heap Dijkstra and A* with a straight-line
heuristic) so the library carries its own routing substrate.  Weight
functions receive the edge and the traversal direction, enabling
length-based, travel-time-based or popularity-based routing.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.exceptions import NoPathError, RoadNetworkError
from repro.roadnet.network import NodeId, RoadEdge, RoadNetwork

# weight(edge, src, dst) -> non-negative cost of traversing edge from src to dst
WeightFn = Callable[[RoadEdge, NodeId, NodeId], float]


def length_weight(edge: RoadEdge, src: NodeId, dst: NodeId) -> float:
    """Edge weight equal to its geometric length (metres)."""
    return edge.length_m


def travel_time_weight(edge: RoadEdge, src: NodeId, dst: NodeId) -> float:
    """Edge weight equal to free-flow travel time (seconds)."""
    speed_ms = edge.grade.free_flow_speed_kmh / 3.6
    return edge.length_m / speed_ms


def _reconstruct(parents: dict[NodeId, NodeId], dst: NodeId) -> list[NodeId]:
    path = [dst]
    while path[-1] in parents:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def dijkstra(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    weight: WeightFn = length_weight,
) -> tuple[float, list[NodeId]]:
    """Least-cost path from *source* to *target*.

    Returns ``(cost, node_path)``; raises :class:`NoPathError` when *target*
    is unreachable.
    """
    network.node(source)
    network.node(target)
    dist: dict[NodeId, float] = {source: 0.0}
    parents: dict[NodeId, NodeId] = {}
    done: set[NodeId] = set()
    heap: list[tuple[float, NodeId]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == target:
            return (d, _reconstruct(parents, target))
        done.add(u)
        for edge, v in network.out_edges(u):
            if v in done:
                continue
            w = weight(edge, u, v)
            if w < 0.0:
                raise RoadNetworkError(f"negative edge weight {w} on edge {edge.edge_id}")
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parents[v] = u
                heapq.heappush(heap, (nd, v))
    raise NoPathError(f"no path from node {source} to node {target}")


def dijkstra_all(
    network: RoadNetwork,
    source: NodeId,
    weight: WeightFn = length_weight,
    max_cost: float | None = None,
) -> dict[NodeId, float]:
    """Costs of the least-cost paths from *source* to every reachable node.

    When *max_cost* is given, the search is pruned beyond that cost.
    """
    network.node(source)
    dist: dict[NodeId, float] = {source: 0.0}
    done: set[NodeId] = set()
    heap: list[tuple[float, NodeId]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for edge, v in network.out_edges(u):
            if v in done:
                continue
            nd = d + weight(edge, u, v)
            if max_cost is not None and nd > max_cost:
                continue
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def a_star(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    weight: WeightFn = length_weight,
    heuristic_scale: float = 1.0,
) -> tuple[float, list[NodeId]]:
    """A* search with a straight-line-distance heuristic.

    The heuristic is admissible for :func:`length_weight` with
    ``heuristic_scale=1``; for travel-time weights pass
    ``heuristic_scale = 1 / v_max`` (seconds per metre at the fastest speed).
    """
    network.node(source)
    target_point = network.node(target).point

    def h(node_id: NodeId) -> float:
        return heuristic_scale * network.projector.distance_m(
            network.node(node_id).point, target_point
        )

    dist: dict[NodeId, float] = {source: 0.0}
    parents: dict[NodeId, NodeId] = {}
    done: set[NodeId] = set()
    heap: list[tuple[float, NodeId]] = [(h(source), source)]
    while heap:
        _, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == target:
            return (dist[u], _reconstruct(parents, target))
        done.add(u)
        for edge, v in network.out_edges(u):
            if v in done:
                continue
            nd = dist[u] + weight(edge, u, v)
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parents[v] = u
                heapq.heappush(heap, (nd + h(v), v))
    raise NoPathError(f"no path from node {source} to node {target}")
