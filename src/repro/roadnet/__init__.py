"""Road-network substrate: attributed graph, routing, synthetic city."""

from repro.roadnet.types import RoadGrade, TrafficDirection
from repro.roadnet.network import EdgeId, NodeId, RoadEdge, RoadNetwork, RoadNode
from repro.roadnet.shortest_path import (
    a_star,
    dijkstra,
    dijkstra_all,
    length_weight,
    travel_time_weight,
)
from repro.roadnet.generator import (
    CityConfig,
    generate_city,
    largest_scc_subnetwork,
    strongly_connected_components,
)
from repro.roadnet.k_paths import k_shortest_paths
from repro.roadnet.io import load_network, network_from_dict, network_to_dict, save_network

__all__ = [
    "RoadGrade",
    "TrafficDirection",
    "NodeId",
    "EdgeId",
    "RoadNode",
    "RoadEdge",
    "RoadNetwork",
    "dijkstra",
    "dijkstra_all",
    "a_star",
    "length_weight",
    "travel_time_weight",
    "CityConfig",
    "generate_city",
    "strongly_connected_components",
    "largest_scc_subnetwork",
    "k_shortest_paths",
    "load_network",
    "save_network",
    "network_to_dict",
    "network_from_dict",
]
