"""JSON serialization of road networks."""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import RoadNetworkError
from repro.geo import GeoPoint, LocalProjector
from repro.roadnet.network import RoadNetwork
from repro.roadnet.types import RoadGrade, TrafficDirection

_FORMAT_VERSION = 1


def network_to_dict(network: RoadNetwork) -> dict:
    """Serialize *network* into a JSON-compatible dictionary."""
    return {
        "version": _FORMAT_VERSION,
        "origin": {"lat": network.projector.origin.lat, "lon": network.projector.origin.lon},
        "nodes": [
            {"id": n.node_id, "lat": n.point.lat, "lon": n.point.lon}
            for n in network.nodes()
        ],
        "edges": [
            {
                "id": e.edge_id,
                "u": e.u,
                "v": e.v,
                "grade": int(e.grade),
                "width_m": e.width_m,
                "direction": int(e.direction),
                "name": e.name,
            }
            for e in network.edges()
        ],
    }


def network_from_dict(data: dict) -> RoadNetwork:
    """Rebuild a road network from :func:`network_to_dict` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise RoadNetworkError(f"unsupported road-network format version: {version}")
    origin = GeoPoint(data["origin"]["lat"], data["origin"]["lon"])
    network = RoadNetwork(LocalProjector(origin))
    for node in data["nodes"]:
        network.add_node(GeoPoint(node["lat"], node["lon"]), node_id=node["id"])
    for edge in data["edges"]:
        network.add_edge(
            edge["u"],
            edge["v"],
            RoadGrade(edge["grade"]),
            edge["width_m"],
            TrafficDirection(edge["direction"]),
            edge["name"],
            edge_id=edge["id"],
        )
    return network


def save_network(network: RoadNetwork, path: str | Path) -> None:
    """Write *network* to *path* as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network)), encoding="utf-8")


def load_network(path: str | Path) -> RoadNetwork:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
