"""The road-network graph: nodes, attributed edges, spatial queries.

Edges are stored once with a :class:`TrafficDirection`; a two-way edge is
traversable in both directions, a one-way edge only from ``u`` to ``v``.
All metric queries (nearest node / nearest edge) are served by grid indexes
built lazily on first use and invalidated on mutation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import RoadNetworkError
from repro.geo import (
    BoundingBox,
    GeoPoint,
    GridIndex,
    LocalProjector,
    point_segment_distance_m,
)
from repro.roadnet.types import RoadGrade, TrafficDirection

NodeId = int
EdgeId = int


@dataclass(frozen=True, slots=True)
class RoadNode:
    """An intersection or geometry vertex of the road network."""

    node_id: NodeId
    point: GeoPoint


@dataclass(frozen=True, slots=True)
class RoadEdge:
    """A road segment between two nodes, carrying the paper's road attributes."""

    edge_id: EdgeId
    u: NodeId
    v: NodeId
    grade: RoadGrade
    width_m: float
    direction: TrafficDirection
    name: str
    length_m: float

    def other_end(self, node: NodeId) -> NodeId:
        """The endpoint opposite *node*."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise RoadNetworkError(f"node {node} is not an endpoint of edge {self.edge_id}")

    def allows(self, src: NodeId, dst: NodeId) -> bool:
        """Whether traffic may traverse this edge from *src* to *dst*."""
        if src == self.u and dst == self.v:
            return True
        if src == self.v and dst == self.u:
            return self.direction is TrafficDirection.TWO_WAY
        return False


@dataclass(slots=True)
class _Indexes:
    node_grid: GridIndex[NodeId] | None = None
    edge_grid: GridIndex[EdgeId] | None = None


class RoadNetwork:
    """A mutable road graph with attribute-carrying edges and spatial queries."""

    def __init__(self, projector: LocalProjector) -> None:
        self.projector = projector
        self._nodes: dict[NodeId, RoadNode] = {}
        self._edges: dict[EdgeId, RoadEdge] = {}
        self._adjacency: dict[NodeId, list[EdgeId]] = {}
        self._next_node_id = 0
        self._next_edge_id = 0
        self._indexes = _Indexes()

    # -- construction ------------------------------------------------------

    def add_node(self, point: GeoPoint, node_id: NodeId | None = None) -> RoadNode:
        """Add a node at *point*; auto-assigns an id unless one is given."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._nodes:
            raise RoadNetworkError(f"duplicate node id {node_id}")
        node = RoadNode(node_id, point)
        self._nodes[node_id] = node
        self._adjacency[node_id] = []
        self._next_node_id = max(self._next_node_id, node_id + 1)
        self._indexes = _Indexes()
        return node

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        grade: RoadGrade,
        width_m: float,
        direction: TrafficDirection,
        name: str,
        edge_id: EdgeId | None = None,
    ) -> RoadEdge:
        """Add an edge between existing nodes *u* and *v*."""
        if u not in self._nodes or v not in self._nodes:
            raise RoadNetworkError(f"edge endpoints must exist: {u}, {v}")
        if u == v:
            raise RoadNetworkError(f"self-loop edges are not allowed (node {u})")
        if width_m <= 0.0:
            raise RoadNetworkError(f"road width must be positive, got {width_m}")
        if edge_id is None:
            edge_id = self._next_edge_id
        if edge_id in self._edges:
            raise RoadNetworkError(f"duplicate edge id {edge_id}")
        length = self.projector.distance_m(self._nodes[u].point, self._nodes[v].point)
        edge = RoadEdge(edge_id, u, v, grade, width_m, direction, name, length)
        self._edges[edge_id] = edge
        self._adjacency[u].append(edge_id)
        self._adjacency[v].append(edge_id)
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        self._indexes = _Indexes()
        return edge

    # -- accessors ---------------------------------------------------------

    def node(self, node_id: NodeId) -> RoadNode:
        """Node by id; raises :class:`RoadNetworkError` if unknown."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise RoadNetworkError(f"unknown node id {node_id}") from None

    def edge(self, edge_id: EdgeId) -> RoadEdge:
        """Edge by id; raises :class:`RoadNetworkError` if unknown."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise RoadNetworkError(f"unknown edge id {edge_id}") from None

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def nodes(self) -> Iterator[RoadNode]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[RoadEdge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    def node_ids(self) -> list[NodeId]:
        """All node ids, in insertion order."""
        return list(self._nodes)

    def bounding_box(self) -> BoundingBox:
        """Extent of the network."""
        return BoundingBox.from_points(n.point for n in self._nodes.values())

    # -- topology ----------------------------------------------------------

    def incident_edges(self, node_id: NodeId) -> list[RoadEdge]:
        """Edges touching *node_id* regardless of direction."""
        self.node(node_id)
        return [self._edges[eid] for eid in self._adjacency[node_id]]

    def out_edges(self, node_id: NodeId) -> list[tuple[RoadEdge, NodeId]]:
        """Edges traversable *from* ``node_id``, as ``(edge, neighbour)``."""
        out = []
        for edge in self.incident_edges(node_id):
            other = edge.other_end(node_id)
            if edge.allows(node_id, other):
                out.append((edge, other))
        return out

    def neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Node ids reachable from *node_id* in one hop."""
        return [other for _, other in self.out_edges(node_id)]

    def degree(self, node_id: NodeId) -> int:
        """Number of incident edges (undirected degree)."""
        self.node(node_id)
        return len(self._adjacency[node_id])

    def edge_between(self, u: NodeId, v: NodeId) -> RoadEdge | None:
        """A traversable edge from *u* to *v*, or ``None``."""
        for edge in self.incident_edges(u):
            if edge.other_end(u) == v and edge.allows(u, v):
                return edge
        return None

    # -- spatial queries ----------------------------------------------------

    def _node_grid(self) -> GridIndex[NodeId]:
        if self._indexes.node_grid is None:
            grid: GridIndex[NodeId] = GridIndex(self.projector)
            for node in self._nodes.values():
                grid.insert(node.point, node.node_id)
            self._indexes.node_grid = grid
        return self._indexes.node_grid

    def _edge_grid(self) -> GridIndex[EdgeId]:
        # Edges are indexed by midpoint; queries over-scan by half the longest
        # edge so that long edges near the query point are not missed.
        if self._indexes.edge_grid is None:
            grid: GridIndex[EdgeId] = GridIndex(self.projector)
            for edge in self._edges.values():
                a = self._nodes[edge.u].point
                b = self._nodes[edge.v].point
                mid = GeoPoint((a.lat + b.lat) / 2.0, (a.lon + b.lon) / 2.0)
                grid.insert(mid, edge.edge_id)
            self._indexes.edge_grid = grid
        return self._indexes.edge_grid

    def _max_edge_length(self) -> float:
        if not self._edges:
            return 0.0
        return max(e.length_m for e in self._edges.values())

    def nearest_node(self, point: GeoPoint, max_radius_m: float = 5_000.0) -> RoadNode | None:
        """The node closest to *point* within *max_radius_m*."""
        hit = self._node_grid().nearest(point, max_radius_m)
        if hit is None:
            return None
        return self._nodes[hit[1]]

    def nodes_within(self, point: GeoPoint, radius_m: float) -> list[tuple[float, RoadNode]]:
        """All nodes within *radius_m* of *point*, as ``(distance, node)``."""
        hits = self._node_grid().query_radius(point, radius_m)
        return [(d, self._nodes[nid]) for d, nid in hits]

    def edges_near(self, point: GeoPoint, radius_m: float) -> list[tuple[float, RoadEdge]]:
        """Edges whose geometry passes within *radius_m* of *point*.

        Returns ``(perpendicular_distance_m, edge)`` pairs, unsorted.
        """
        scan = radius_m + self._max_edge_length() / 2.0 + 1.0
        out: list[tuple[float, RoadEdge]] = []
        for _, eid in self._edge_grid().query_radius(point, scan):
            edge = self._edges[eid]
            dist, _ = point_segment_distance_m(
                point, self._nodes[edge.u].point, self._nodes[edge.v].point, self.projector
            )
            if dist <= radius_m:
                out.append((dist, edge))
        return out

    def nearest_edge(
        self, point: GeoPoint, max_radius_m: float = 500.0
    ) -> tuple[float, RoadEdge] | None:
        """The edge geometrically closest to *point*, or ``None``."""
        hits = self.edges_near(point, max_radius_m)
        if not hits:
            return None
        return min(hits, key=lambda pair: pair[0])

    # -- derived geometry ----------------------------------------------------

    def edge_bearing_deg(self, edge: RoadEdge, from_node: NodeId) -> float:
        """Bearing of *edge* leaving *from_node*, degrees clockwise from north."""
        a = self.node(from_node).point
        b = self.node(edge.other_end(from_node)).point
        ax, ay = self.projector.to_xy(a)
        bx, by = self.projector.to_xy(b)
        return math.degrees(math.atan2(bx - ax, by - ay)) % 360.0

    def path_points(self, node_path: Iterable[NodeId]) -> list[GeoPoint]:
        """Geometry of a node path as a polyline of node coordinates."""
        return [self.node(nid).point for nid in node_path]

    def path_edges(self, node_path: list[NodeId]) -> list[RoadEdge]:
        """Edges along a node path; raises if two nodes are not connected."""
        edges = []
        for u, v in zip(node_path, node_path[1:]):
            edge = self.edge_between(u, v)
            if edge is None:
                raise RoadNetworkError(f"no traversable edge from {u} to {v}")
            edges.append(edge)
        return edges

    def path_length_m(self, node_path: list[NodeId]) -> float:
        """Total length of the edges along a node path, metres."""
        return sum(e.length_m for e in self.path_edges(node_path))
