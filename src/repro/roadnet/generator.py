"""Synthetic city generator.

The paper evaluates on a commercial map of Beijing, which we cannot ship.
This module generates a city-shaped road network that exercises the same
code paths: a ring expressway, arterial avenues, and a capillary mesh of
minor streets with one-way sections — seven road grades, widths correlated
with grade, positional jitter so that intersections are genuine turning
points.  Generation is fully deterministic given the RNG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import RoadNetworkError
from repro.geo import GeoPoint, LocalProjector
from repro.roadnet.network import NodeId, RoadNetwork
from repro.roadnet.types import RoadGrade, TrafficDirection

#: Syllables used to build street names; picked to read like romanized
#: Chinese street names without colliding with real ones.
_NAME_SYLLABLES = (
    "Chang", "Hua", "Jing", "An", "Fu", "Xing", "Ping", "Yong", "Tai",
    "Shun", "Guang", "Ming", "He", "Sheng", "Long", "Wen", "Qing", "Yuan",
    "Bao", "Kang", "Da", "Xin", "Dong", "Nan", "Xi", "Bei", "Zhong",
)

_GRADE_SUFFIX: dict[RoadGrade, str] = {
    RoadGrade.HIGHWAY: "Ring Expressway",
    RoadGrade.EXPRESS: "Expressway",
    RoadGrade.NATIONAL: "Avenue",
    RoadGrade.PROVINCIAL: "Boulevard",
    RoadGrade.COUNTRY: "Road",
    RoadGrade.VILLAGE: "Street",
    RoadGrade.FEEDER: "Lane",
}


@dataclass(frozen=True, slots=True)
class CityConfig:
    """Parameters of the synthetic city.

    The defaults produce a ~7 km × 7 km urban core — large enough for trips
    of dozens of segments, small enough to simulate thousands of trips in
    seconds.
    """

    center: GeoPoint = GeoPoint(39.91, 116.40)
    blocks: int = 22
    block_size_m: float = 320.0
    jitter_m: float = 32.0
    one_way_fraction: float = 0.30
    minor_removal_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.blocks < 4:
            raise RoadNetworkError(f"city needs at least 4 blocks, got {self.blocks}")
        if self.block_size_m <= 0.0:
            raise RoadNetworkError("block size must be positive")
        if not 0.0 <= self.one_way_fraction <= 1.0:
            raise RoadNetworkError("one_way_fraction must be within [0, 1]")
        if not 0.0 <= self.minor_removal_fraction <= 0.5:
            raise RoadNetworkError("minor_removal_fraction must be within [0, 0.5]")


def _line_grade(index: int, last: int, rng: np.random.Generator) -> RoadGrade:
    """Grade of a full grid line by its index (ring roads on the border)."""
    if index in (0, last):
        return RoadGrade.HIGHWAY
    if index % 8 == 4:
        return RoadGrade.EXPRESS
    if index % 4 == 2:
        return RoadGrade.NATIONAL if index % 8 == 2 else RoadGrade.PROVINCIAL
    if index % 2 == 0:
        return RoadGrade.COUNTRY
    return RoadGrade.VILLAGE if rng.random() < 0.6 else RoadGrade.FEEDER


class _NameFactory:
    """Generates unique, city-flavoured street names."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._used: set[str] = set()

    def make(self, grade: RoadGrade) -> str:
        suffix = _GRADE_SUFFIX[grade]
        for _ in range(200):
            a, b = self._rng.choice(len(_NAME_SYLLABLES), size=2, replace=True)
            stem = _NAME_SYLLABLES[int(a)] + _NAME_SYLLABLES[int(b)].lower()
            name = f"{stem} {suffix}"
            if name not in self._used:
                self._used.add(name)
                return name
        # Fall back to a numbered name if the syllable space is exhausted.
        name = f"{suffix} {len(self._used) + 1}"
        self._used.add(name)
        return name


def generate_city(config: CityConfig, rng: np.random.Generator) -> RoadNetwork:
    """Build the synthetic road network described by *config*.

    The result is guaranteed to be strongly connected (the largest strongly
    connected component is kept; with the default parameters that is the
    whole grid minus, at most, a few pruned feeder stubs).
    """
    n = config.blocks  # grid lines run from index 0 to n inclusive
    half = n * config.block_size_m / 2.0
    projector = LocalProjector(config.center)
    network = RoadNetwork(projector)
    names = _NameFactory(rng)

    # Nodes: jittered grid vertices.  Border nodes are jittered less so the
    # ring road stays ring-shaped.
    node_ids: dict[tuple[int, int], NodeId] = {}
    for i in range(n + 1):  # column index (west → east)
        for j in range(n + 1):  # row index (south → north)
            on_border = i in (0, n) or j in (0, n)
            amplitude = config.jitter_m * (0.25 if on_border else 1.0)
            dx = float(rng.uniform(-amplitude, amplitude))
            dy = float(rng.uniform(-amplitude, amplitude))
            x = i * config.block_size_m - half + dx
            y = j * config.block_size_m - half + dy
            node = network.add_node(projector.to_point(x, y))
            node_ids[(i, j)] = node.node_id

    # Per-line attributes: grade, width, name, one-way-ness.
    def line_attrs(index: int) -> tuple[RoadGrade, float, str, TrafficDirection, int]:
        grade = _line_grade(index, n, rng)
        width = round(grade.typical_width_m * float(rng.uniform(0.85, 1.15)), 1)
        name = names.make(grade)
        minor = grade in (RoadGrade.VILLAGE, RoadGrade.FEEDER)
        one_way = minor and rng.random() < config.one_way_fraction
        direction = TrafficDirection.ONE_WAY if one_way else TrafficDirection.TWO_WAY
        # One-way orientation alternates with the line index, as in real
        # cities, so parallel one-way streets run in opposite directions.
        orientation = 1 if index % 2 == 0 else -1
        return (grade, width, name, direction, orientation)

    v_lines = {i: line_attrs(i) for i in range(n + 1)}
    h_lines = {j: line_attrs(j) for j in range(n + 1)}

    def add_line_edge(
        a: tuple[int, int],
        b: tuple[int, int],
        attrs: tuple[RoadGrade, float, str, TrafficDirection, int],
    ) -> None:
        grade, width, name, direction, orientation = attrs
        removable = (
            grade in (RoadGrade.VILLAGE, RoadGrade.FEEDER)
            and direction is TrafficDirection.TWO_WAY
            and rng.random() < config.minor_removal_fraction
        )
        if removable:
            return
        u, v = node_ids[a], node_ids[b]
        if direction is TrafficDirection.ONE_WAY and orientation < 0:
            u, v = v, u
        network.add_edge(u, v, grade, width, direction, name)

    for i in range(n + 1):  # vertical lines: edges between rows j and j+1
        for j in range(n):
            add_line_edge((i, j), (i, j + 1), v_lines[i])
    for j in range(n + 1):  # horizontal lines: edges between columns i and i+1
        for i in range(n):
            add_line_edge((i, j), (i + 1, j), h_lines[j])

    return largest_scc_subnetwork(network)


def strongly_connected_components(network: RoadNetwork) -> list[set[NodeId]]:
    """Strongly connected components of the directed traversal graph.

    Iterative Kosaraju (two passes of depth-first search); recursion-free so
    it handles city-sized graphs without hitting Python's stack limit.
    """
    order: list[NodeId] = []
    visited: set[NodeId] = set()
    for start in network.node_ids():
        if start in visited:
            continue
        stack: list[tuple[NodeId, int]] = [(start, 0)]
        visited.add(start)
        while stack:
            node, child_idx = stack.pop()
            neighbors = network.neighbors(node)
            if child_idx < len(neighbors):
                stack.append((node, child_idx + 1))
                nxt = neighbors[child_idx]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(node)

    # Reverse adjacency: v -> list of predecessors u with a u->v edge.
    reverse: dict[NodeId, list[NodeId]] = {nid: [] for nid in network.node_ids()}
    for node_id in network.node_ids():
        for _, neighbor in network.out_edges(node_id):
            reverse[neighbor].append(node_id)

    components: list[set[NodeId]] = []
    assigned: set[NodeId] = set()
    for start in reversed(order):
        if start in assigned:
            continue
        component = {start}
        assigned.add(start)
        stack2 = [start]
        while stack2:
            node = stack2.pop()
            for pred in reverse[node]:
                if pred not in assigned:
                    assigned.add(pred)
                    component.add(pred)
                    stack2.append(pred)
        components.append(component)
    return components


def largest_scc_subnetwork(network: RoadNetwork) -> RoadNetwork:
    """The sub-network induced by the largest strongly connected component.

    Node and edge ids are preserved, so references remain valid across the
    pruning step.
    """
    components = strongly_connected_components(network)
    if not components:
        return network
    keep = max(components, key=len)
    if len(keep) == network.node_count:
        return network
    pruned = RoadNetwork(network.projector)
    for node in network.nodes():
        if node.node_id in keep:
            pruned.add_node(node.point, node_id=node.node_id)
    for edge in network.edges():
        if edge.u in keep and edge.v in keep:
            pruned.add_edge(
                edge.u, edge.v, edge.grade, edge.width_m, edge.direction,
                edge.name, edge_id=edge.edge_id,
            )
    return pruned
