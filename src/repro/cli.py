"""Command-line interface.

``stmaker demo`` builds a deterministic city scenario, simulates a trip and
prints its summaries at several granularities (the Fig. 6 experience);
``stmaker summarize`` runs the pipeline on a user-supplied CSV trajectory
recorded inside the synthetic city (with ``--sanitize``/``--strict``/
``--max-retries``/``--deadline`` resilience controls — see
``docs/ROBUSTNESS.md`` — ``--workers``/``--shard-size``/
``--executor`` sharded serving controls — see ``docs/SERVING.md`` — and
``--max-shard-retries``/``--breaker``/``--max-in-flight``/
``--max-queued-items``/``--shed-policy`` failure-containment controls);
``stmaker experiment``
regenerates any of the paper's evaluation figures from the command line;
``stmaker report`` summarizes a batch of simulated trips (optionally on
the worker pool) and writes a joined :class:`~repro.obs.RunReport`
artifact (JSON + Markdown).

Every subcommand also takes the observability flags:

* ``-v``/``-vv`` — diagnostic logging to stderr (INFO / DEBUG);
* ``--trace`` — trace the pipeline and dump the span tree as JSON
  (stderr, or ``--trace-out FILE``);
* ``--trace-chrome FILE`` — write the trace as Chrome trace-event JSON
  (load it in Perfetto / ``chrome://tracing``; implies ``--trace``);
* ``--metrics-out FILE`` — write the metrics snapshot as JSON;
* ``--metrics-prom FILE`` — write the metrics in Prometheus text
  exposition format;
* ``--events-out FILE`` — stream pipeline events (stage start/end,
  degradation, retry, quarantine, sanitization, progress) as JSONL;
* ``--ops-port PORT`` — serve live ``/metrics``, ``/healthz``,
  ``/readyz``, ``/status`` and ``/events`` over HTTP while the command
  runs (``stmaker ops-serve`` keeps the surface up as a long-lived loop);
* ``--flight-dir DIR`` — run the black-box flight recorder; every
  quarantine/degradation dumps the recent event/span tail to DIR;
* ``--profile`` — print a cProfile report of the command to stderr.

Primary command output (summary text, experiment tables) stays on stdout;
diagnostics go through the ``repro.cli`` logger and stderr.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import sys

from repro.exceptions import ReproError

logger = logging.getLogger("repro.cli")


def _build_scenario(seed: int, training: int):
    from repro.simulate import CityScenario, ScenarioConfig

    logger.info("building scenario (seed=%d, training trips=%d) ...", seed, training)
    return CityScenario.build(
        ScenarioConfig(seed=seed, n_training_trips=training)
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args.seed, args.training)
    trip = scenario.simulate_trip(depart_time=args.hour * 3600.0)
    logger.info(
        "simulated trip: %d GPS samples, %d stop(s), %d U-turn(s)",
        len(trip.raw), len(trip.stops), len(trip.u_turns),
    )
    for k in (1, 2, 3):
        summary = scenario.stmaker.summarize(trip.raw, k=k)
        print(f"k = {k}:")
        print(f"  {summary.text}\n")

    if not args.no_map:
        from repro.viz import render_summary_map

        summary = scenario.stmaker.summarize(trip.raw, k=2)
        canvas = render_summary_map(
            scenario.network, trip.raw, summary, scenario.landmarks
        )
        print(canvas.text())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.artifact import save_artifact

    scenario = _build_scenario(args.seed, args.training)
    info = save_artifact(scenario.stmaker, args.out, format=args.format)
    print(
        f"trained model written to {info.path} "
        f"({info.format}, {info.size_bytes} bytes, "
        f"fingerprint {info.fingerprint[:16]})"
    )
    return 0


def _progress_printer():
    """A ``summarize_many`` progress callback writing one line per item."""

    def callback(snapshot) -> None:
        print(f"progress: {snapshot.describe()}", file=sys.stderr)

    return callback


def _containment_kwargs(args: argparse.Namespace) -> dict:
    """Map the failure-containment flags to ``summarize_many`` kwargs.

    Returns ``{}``-valued defaults (``None``/``False``) when no flag was
    given, so flag-less invocations behave exactly as before.
    """
    from repro.serving import AdmissionPolicy, ShardRetryPolicy

    shard_retry = None
    if args.max_shard_retries is not None:
        shard_retry = ShardRetryPolicy(max_retries=args.max_shard_retries)
    admission = None
    if args.max_queued_items is not None or args.max_in_flight is not None:
        admission = AdmissionPolicy(
            max_queued_items=args.max_queued_items,
            max_in_flight_shards=args.max_in_flight,
            shed=args.shed_policy,
        )
    return {
        "shard_retry": shard_retry,
        "breaker": True if args.breaker else None,
        "admission": admission,
    }


def _add_containment_flags(parser: argparse.ArgumentParser) -> None:
    """The failure-containment flag group (``docs/ROBUSTNESS.md``)."""
    group = parser.add_argument_group("failure containment")
    group.add_argument(
        "--max-shard-retries", type=int, default=None, metavar="N",
        help="retries for a shard lost to a worker crash before it is "
        "bisected down to the poison item (process executor; default: 2)",
    )
    group.add_argument(
        "--breaker", action="store_true",
        help="arm the per-executor circuit breaker: crash storms route "
        "shards to a degraded in-parent path until the pool recovers",
    )
    group.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="max shards in flight inside the pool at once (admission "
        "control; default: 2x workers)",
    )
    group.add_argument(
        "--max-queued-items", type=int, default=None, metavar="N",
        help="max items admitted per batch; over budget the --shed-policy "
        "applies (default: unbounded)",
    )
    group.add_argument(
        "--shed-policy", choices=["reject", "degrade"], default="reject",
        help="over budget: 'reject' fails fast with OverloadError, "
        "'degrade' serves the batch at k=1 (default: reject)",
    )


def _write_run_report(args: argparse.Namespace, summaries=(), batches=()) -> None:
    from repro import obs

    report = obs.build_run_report(
        summaries,
        batches=batches,
        registry=obs.metrics(),
        collector=obs.get_collector(),
    )
    json_path, md_path = report.write(args.report_out)
    logger.info("run report written to %s and %s", json_path, md_path)


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.exceptions import SummarizationError
    from repro.resilience import RetryPolicy
    from repro.trajectory import read_trajectory_csv

    # Read the input before the (expensive) model build so malformed files
    # fail fast with a one-line diagnostic.
    trajectory = read_trajectory_csv(args.csv)
    logger.debug(
        "read %d points from %s (trajectory %s)",
        len(trajectory.points), args.csv, trajectory.trajectory_id,
    )
    if args.model:
        from repro.core import load_stmaker

        logger.info("loading model from %s ...", args.model)
        stmaker = load_stmaker(args.model)
    else:
        stmaker = _build_scenario(args.seed, args.training).stmaker
    from repro import obs

    obs.mark_ready()  # model is warm; flip /readyz when --ops-port is up

    if args.strict:
        summary = stmaker.summarize(
            trajectory, k=args.k, strict=True, sanitize=args.sanitize
        )
        if args.report_out:
            _write_run_report(args, summaries=[summary])
    else:
        result = stmaker.summarize_many(
            [trajectory], k=args.k, sanitize=args.sanitize,
            retry=RetryPolicy(max_retries=args.max_retries),
            deadline_s=args.deadline,
            progress=_progress_printer() if args.progress else None,
            workers=args.workers, shard_size=args.shard_size,
            executor=args.executor,
            # A process pool can serve straight from the file the model
            # was loaded from instead of re-publishing it.
            artifact=(
                args.model
                if args.executor == "process" and args.model
                else None
            ),
            **_containment_kwargs(args),
        )
        if args.report_out:
            _write_run_report(args, batches=[result])
        if result.quarantined:
            entry = result.quarantined[0]
            raise SummarizationError(
                f"trajectory {entry.trajectory_id!r} quarantined after "
                f"{entry.attempts} attempt(s): {entry.error}"
            )
        summary = result.summaries[0]
        if args.sanitize and (report := result.sanitization[0]) and not report.clean:
            logger.info("input sanitized: %r", report)
        if summary.degradation.degraded:
            logger.warning(
                "summary degraded (stages: %s)",
                ", ".join(summary.degradation.stages()),
            )
    print(summary.text)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro import obs

    scenario = _build_scenario(args.seed, args.training)
    obs.mark_ready()  # model is warm; flip /readyz when --ops-port is up
    trips = [
        scenario.simulate_trip(depart_time=(8.0 + 0.2 * i) * 3600.0).raw
        for i in range(args.trips)
    ]
    # The report joins metrics and traces, so both sinks must be live even
    # when the user did not pass --trace/--metrics-out (main() enabled them
    # in that case; these calls then reuse the active sinks).
    registry = obs.enable_metrics()
    collector = obs.get_collector() or obs.enable_tracing()
    logger.info("summarizing %d simulated trips ...", len(trips))
    result = scenario.stmaker.summarize_many(
        trips, k=args.k,
        progress=_progress_printer() if args.progress else None,
        workers=args.workers, shard_size=args.shard_size,
        executor=args.executor,
        **_containment_kwargs(args),
    )
    report = obs.build_run_report(
        batches=[result], registry=registry, collector=collector
    )
    json_path, md_path = report.write(args.out)
    print(report.to_markdown(), end="")
    print(f"\nrun report written to {json_path} and {md_path}", file=sys.stderr)
    return 0


def _cmd_ops_serve(args: argparse.Namespace) -> int:
    """A long-lived serving loop behind the live ops surface.

    Builds the scenario once, marks the surface ready, then keeps
    summarizing batches of simulated trips until ``--duration`` elapses
    (or forever, until Ctrl-C) — a self-contained way to exercise
    ``/metrics``, ``/status`` and the flight recorder against a process
    that is actually doing work.
    """
    import time as _time

    from repro import obs

    # The surface is the point of this command: metrics and events are
    # always on here, and the server was started by main() (--ops-port
    # is implied by the subcommand's --port).
    obs.enable_metrics()
    obs.enable_events()
    scenario = _build_scenario(args.seed, args.training)
    obs.mark_ready()
    server = obs.active_ops_server()
    if server is not None:
        print(f"ops surface listening on {server.url}", file=sys.stderr)
    started = _time.monotonic()
    batch = 0
    try:
        while args.duration is None or _time.monotonic() - started < args.duration:
            trips = [
                scenario.simulate_trip(
                    depart_time=(6.0 + ((batch * args.trips + i) % 64) * 0.25) * 3600.0
                ).raw
                for i in range(args.trips)
            ]
            result = scenario.stmaker.summarize_many(
                trips, k=args.k, workers=args.workers, executor=args.executor,
            )
            batch += 1
            logger.info(
                "batch %d: ok=%d quarantined=%d",
                batch, result.ok_count, result.quarantined_count,
            )
            if args.duration is not None:
                remaining = args.duration - (_time.monotonic() - started)
                if remaining <= 0:
                    break
                _time.sleep(min(args.interval, max(remaining, 0.0)))
            elif args.interval > 0:
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        logger.info("interrupted; shutting down ops loop")
    print(f"served {batch} batch(es)", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The request front-end behind the live ops surface.

    Builds the scenario, starts a :class:`repro.server.SummarizationServer`,
    and pushes batches of simulated trips through it from a rotation of
    tenants — the ``ops-serve`` loop upgraded from driving
    ``summarize_many`` directly to going through the queue, admission,
    and hot caches, so ``/status`` shows the ``server`` block and
    ``/events`` the ``request_enqueued``/``request_done`` stream.
    """
    from repro import obs
    from repro.server import ServerConfig, SummarizationServer

    obs.enable_metrics()
    obs.enable_events()
    scenario = _build_scenario(args.seed, args.training)
    tenants = [f"tenant-{i}" for i in range(args.tenants)]
    config = ServerConfig(
        consumers=args.consumers,
        workers=args.workers,
        executor=args.executor,
        default_deadline_s=args.deadline,
        # The rotation's first tenant gets double weight, so the WRR
        # fairness machinery is visibly exercised on the event stream.
        tenant_weights={tenants[0]: 2} if len(tenants) > 1 else {},
    )
    server = SummarizationServer(scenario.stmaker, config)
    server.start()  # registers the /status "server" block, flips /readyz
    ops_server = obs.active_ops_server()
    if ops_server is not None:
        print(f"ops surface listening on {ops_server.url}", file=sys.stderr)
    handles = []
    try:
        for batch in range(args.requests):
            trips = [
                scenario.simulate_trip(
                    depart_time=(6.0 + ((batch * args.trips + i) % 64) * 0.25)
                    * 3600.0
                ).raw
                for i in range(args.trips)
            ]
            handles.append(server.submit(
                trips, tenant=tenants[batch % len(tenants)], k=args.k
            ))
        ok = quarantined = 0
        for handle in handles:
            result = handle.result(timeout=args.timeout)
            ok += result.ok_count
            quarantined += result.quarantined_count
    except KeyboardInterrupt:
        logger.info("interrupted; shutting down the request front-end")
        server.stop(drain=False)
        return 130
    finally:
        if server.running:
            server.stop()
    stats = server.stats()
    caches = server.caches
    print(
        f"served {stats['served']}/{stats['submitted']} request(s) from "
        f"{len(tenants)} tenant(s): ok={ok} quarantined={quarantined}",
        file=sys.stderr,
    )
    print(
        "hot caches: routes "
        f"{caches.routes.stats()['hit_rate']:.0%} hit rate, anchors "
        f"{caches.anchors.stats()['hit_rate']:.0%} hit rate",
        file=sys.stderr,
    )
    return 0 if stats["failed"] == 0 else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import experiments as exp

    scenario = _build_scenario(args.seed, args.training)
    name = args.figure
    logger.info("running experiment %s (size=%d)", name, args.size)
    if name == "fig8":
        result = exp.run_time_of_day(scenario, trips_per_bin=args.size)
        print(exp.format_ff_table(
            result.bin_labels, result.ff_by_bin, result.feature_keys,
            "time bin", "Fig. 8 — feature frequency across the day",
        ))
    elif name == "fig9":
        result = exp.run_landmark_usage(scenario, n_trips=args.size)
        rows = [
            [f"top {i * 10}-{i * 10 + 10}%", share]
            for i, share in enumerate(result.decile_share)
        ]
        print(exp.format_table(
            ["significance group", "usage share"], rows,
            "Fig. 9 — landmark usage by significance decile",
        ))
    elif name == "fig10a":
        result = exp.run_feature_weight_sweep(scenario, n_trips=args.size)
        print(exp.format_ff_table(
            [f"w(Spe)={w}" for w in result.weights], result.ff_by_weight,
            result.feature_keys, "weight", "Fig. 10(a) — effect of feature weight",
        ))
    elif name == "fig10b":
        result = exp.run_partition_size_sweep(scenario, n_trips=args.size)
        print(exp.format_ff_table(
            [f"k={k}" for k in result.ks], result.ff_by_k,
            result.feature_keys, "k", "Fig. 10(b) — effect of partition size",
        ))
    elif name == "fig11":
        result = exp.run_user_study_experiment(scenario, n_summaries=args.size)
        rows = [[f"level {lvl}", share] for lvl, share in sorted(result.histogram.items())]
        print(exp.format_table(
            ["understanding", "fraction"], rows, "Fig. 11 — simulated user study",
        ))
    elif name == "fig12":
        result = exp.run_efficiency(scenario, n_trips=args.size)
        print(exp.format_table(
            ["|T| bucket", "mean ms"], result.by_size, "Fig. 12(a) — time vs |T|",
        ))
        print()
        print(exp.format_table(
            ["k", "mean ms"], result.by_k, "Fig. 12(b) — time vs k",
        ))
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown figure {name!r}")
    return 0


def _cmd_obs_analyze(args: argparse.Namespace) -> int:
    from repro import obs

    spans = obs.load_spans(args.trace_file) if args.trace_file else []
    events = obs.load_events(args.events_file) if args.events_file else []
    if not spans and not events:
        raise ReproError(
            "nothing to analyze: pass --trace and/or --events artifacts "
            "(from --trace-out / --events-out / flight-recorder dumps)"
        )
    print(obs.render_analysis(spans, events, top=args.top))
    return 1 if args.check and obs.trace_problems(spans) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stmaker",
        description="STMaker trajectory summarization (ICDE 2015 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=7, help="scenario seed")
    parser.add_argument(
        "--training", type=int, default=400, help="training corpus size"
    )

    # Observability flags, shared by every subcommand.
    obs_flags = argparse.ArgumentParser(add_help=False)
    group = obs_flags.add_argument_group("observability")
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="diagnostic logging to stderr (-v INFO, -vv DEBUG)",
    )
    group.add_argument(
        "--trace", action="store_true",
        help="trace the pipeline and dump the span tree as JSON to stderr",
    )
    group.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the JSON trace dump to FILE instead of stderr (implies --trace)",
    )
    group.add_argument(
        "--trace-chrome", metavar="FILE", default=None,
        help="write the trace as Chrome trace-event JSON to FILE "
        "(Perfetto-loadable; implies --trace)",
    )
    group.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the metrics snapshot as JSON to FILE",
    )
    group.add_argument(
        "--metrics-prom", metavar="FILE", default=None,
        help="write the metrics in Prometheus text exposition format to FILE",
    )
    group.add_argument(
        "--events-out", metavar="FILE", default=None,
        help="stream pipeline events (stage/degradation/retry/quarantine/"
        "sanitization/progress) as JSONL to FILE",
    )
    group.add_argument(
        "--ops-port", type=int, default=None, metavar="PORT",
        help="serve live /metrics, /healthz, /readyz, /status and /events "
        "on 127.0.0.1:PORT for the duration of the command (0 = ephemeral)",
    )
    group.add_argument(
        "--flight-dir", metavar="DIR", default=None,
        help="enable the black-box flight recorder; quarantines and "
        "degradations dump the recent event/span tail as JSONL into DIR",
    )
    group.add_argument(
        "--slo", action="append", metavar="SPEC", default=None,
        help="enforce a service-level objective while the command runs "
        "(repeatable; e.g. 'p95_ms=500' or 'success=0.99,window=60'); "
        "breaches emit slo_breach events and are summarized on stderr",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="print a cProfile report of the command to stderr",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser(
        "demo", parents=[obs_flags],
        help="summarize a simulated trip at k=1,2,3",
    )
    demo.add_argument("--hour", type=float, default=8.5, help="departure hour")
    demo.add_argument(
        "--no-map", action="store_true", help="skip the ASCII route map"
    )
    demo.set_defaults(func=_cmd_demo)

    train = sub.add_parser(
        "train", parents=[obs_flags],
        help="train a model and save it as a city-model artifact",
    )
    train.add_argument("--out", default="stmaker-model.json", help="output path")
    train.add_argument(
        "--format", choices=["json", "binary"], default=None,
        help="artifact codec (default: by extension — *.json is JSON, "
        "anything else the compact binary format)",
    )
    train.set_defaults(func=_cmd_train)

    summ = sub.add_parser(
        "summarize", parents=[obs_flags],
        help="summarize a CSV trajectory",
    )
    summ.add_argument("csv", help="CSV file: latitude,longitude,timestamp")
    summ.add_argument("-k", type=int, default=None, help="partition count")
    summ.add_argument(
        "--model", default=None,
        help="trained model JSON (from 'stmaker train'); skips the rebuild",
    )
    resilience = summ.add_argument_group("resilience")
    resilience.add_argument(
        "--sanitize", action="store_true",
        help="clean the input (dedup/sort timestamps, clip teleports) first",
    )
    resilience.add_argument(
        "--strict", action="store_true",
        help="raise on the first stage error instead of degrading gracefully",
    )
    resilience.add_argument(
        "--max-retries", type=int, default=1, metavar="N",
        help="retries for transient stage errors (default: 1)",
    )
    resilience.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; the trajectory is quarantined when exceeded",
    )
    serving = summ.add_argument_group("serving")
    serving.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="workers for the sharded batch pool (default: 1, serial)",
    )
    serving.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="items per shard (forces the pool even with --workers 1)",
    )
    serving.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="pool backend: 'thread' shares the model's memory, 'process' "
        "breaks the GIL by serving shards from a city-model artifact "
        "(reuses --model when given; default: thread)",
    )
    _add_containment_flags(summ)
    summ.add_argument(
        "--progress", action="store_true",
        help="print live progress/throughput lines to stderr",
    )
    summ.add_argument(
        "--report-out", metavar="PREFIX", default=None,
        help="write a run report to PREFIX.json and PREFIX.md",
    )
    summ.set_defaults(func=_cmd_summarize)

    expe = sub.add_parser(
        "experiment", parents=[obs_flags],
        help="regenerate a paper figure",
    )
    expe.add_argument(
        "figure",
        choices=["fig8", "fig9", "fig10a", "fig10b", "fig11", "fig12"],
    )
    expe.add_argument("--size", type=int, default=50, help="workload size")
    expe.set_defaults(func=_cmd_experiment)

    rep = sub.add_parser(
        "report", parents=[obs_flags],
        help="summarize a batch of simulated trips and write a run report",
    )
    rep.add_argument("--trips", type=int, default=20, help="batch size")
    rep.add_argument("-k", type=int, default=None, help="partition count")
    rep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="workers for the sharded batch pool (default: 1, serial)",
    )
    rep.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="items per shard (forces the pool even with --workers 1)",
    )
    rep.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="pool backend for the batch (default: thread)",
    )
    _add_containment_flags(rep)
    rep.add_argument(
        "--out", metavar="PREFIX", default="run-report",
        help="artifact prefix: writes PREFIX.json and PREFIX.md "
        "(default: run-report)",
    )
    rep.add_argument(
        "--progress", action="store_true",
        help="print live progress/throughput lines to stderr",
    )
    rep.set_defaults(func=_cmd_report)

    ops = sub.add_parser(
        "ops-serve", parents=[obs_flags],
        help="run a serving loop behind the live HTTP ops surface",
    )
    ops.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="ops surface port on 127.0.0.1 (default: 0, ephemeral)",
    )
    ops.add_argument(
        "--trips", type=int, default=5, help="simulated trips per batch"
    )
    ops.add_argument("-k", type=int, default=None, help="partition count")
    ops.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="workers for each batch (default: 1, serial)",
    )
    ops.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="pool backend for each batch (default: thread)",
    )
    ops.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="pause between batches (default: 1.0)",
    )
    ops.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop after SECONDS (default: run until Ctrl-C)",
    )
    ops.set_defaults(func=_cmd_ops_serve)

    serve = sub.add_parser(
        "serve", parents=[obs_flags],
        help="run the request front-end (queue + hot caches) behind the "
        "live HTTP ops surface",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="ops surface port on 127.0.0.1 (default: 0, ephemeral)",
    )
    serve.add_argument(
        "--requests", type=int, default=8, metavar="N",
        help="simulated requests to push through the server (default: 8)",
    )
    serve.add_argument(
        "--trips", type=int, default=5, help="simulated trips per request"
    )
    serve.add_argument(
        "--tenants", type=int, default=2, metavar="N",
        help="simulated tenants submitting round-robin (default: 2)",
    )
    serve.add_argument("-k", type=int, default=None, help="partition count")
    serve.add_argument(
        "--consumers", type=int, default=1, metavar="N",
        help="queue consumer threads (default: 1)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="summarize_many workers per request (default: 1, serial)",
    )
    serve.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="pool backend for each request (default: thread)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline budget, counted from enqueue",
    )
    serve.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="max wait for each response (default: 300)",
    )
    serve.set_defaults(func=_cmd_serve)

    obs_cmd = sub.add_parser(
        "obs",
        help="offline analysis of recorded observability artifacts",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    analyze = obs_sub.add_parser(
        "analyze",
        help="reconstruct traces, critical paths, and latency tables "
        "from span/event artifacts",
    )
    # dest= keeps these clear of the run-command obs flags main() probes
    # with getattr (a file path in args.trace would read as --trace).
    analyze.add_argument(
        "--trace", dest="trace_file", metavar="FILE", default=None,
        help="span artifact: a --trace-out JSON dump, span JSONL, or a "
        "flight-recorder capture",
    )
    analyze.add_argument(
        "--events", dest="events_file", metavar="FILE", default=None,
        help="event artifact: a --events-out JSONL stream or a "
        "flight-recorder capture",
    )
    analyze.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="traces/items to show in the ranked sections (default: 10)",
    )
    analyze.add_argument(
        "--check", action="store_true",
        help="exit non-zero when any trace is malformed "
        "(multiple roots, duplicate span ids, parent cycles)",
    )
    analyze.set_defaults(func=_cmd_obs_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``stmaker`` console script."""
    from repro import obs

    args = build_parser().parse_args(argv)
    obs.configure_logging(getattr(args, "verbose", 0))

    trace_out = getattr(args, "trace_out", None)
    trace_chrome = getattr(args, "trace_chrome", None)
    want_trace = (
        getattr(args, "trace", False)
        or trace_out is not None
        or trace_chrome is not None
    )
    metrics_out = getattr(args, "metrics_out", None)
    metrics_prom = getattr(args, "metrics_prom", None)
    events_out = getattr(args, "events_out", None)
    report_out = getattr(args, "report_out", None)
    collector = obs.enable_tracing() if want_trace else None
    if want_trace or metrics_out or metrics_prom or report_out:
        obs.enable_metrics()
    if report_out and collector is None:
        # A run report joins stage times from the trace, so --report-out
        # turns tracing on even without an explicit --trace (no dump).
        obs.enable_tracing()
    event_sink = None
    if events_out:
        event_sink = obs.JsonlEventSink(events_out)
        obs.enable_events().subscribe(event_sink)
    slo_specs = getattr(args, "slo", None) or []
    if slo_specs:
        try:
            objectives = [obs.parse_slo(spec) for spec in slo_specs]
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        # Implies the event stream: objectives watch item_end events.
        obs.enable_slo(objectives)
    flight_dir = getattr(args, "flight_dir", None)
    if flight_dir is not None:
        obs.enable_flight_recorder(dump_dir=flight_dir)
    ops_port = getattr(args, "ops_port", None)
    if ops_port is None and args.command in ("ops-serve", "serve"):
        ops_port = args.port
    ops_server = None
    if ops_port is not None:
        # /metrics and /status need live sinks to be worth scraping.
        obs.enable_metrics()
        obs.enable_events()
        ops_server = obs.start_ops_server(port=ops_port)
        logger.info("ops surface listening on %s", ops_server.url)
    profile_cm = (
        obs.profiled(limit=25)
        if getattr(args, "profile", False)
        else contextlib.nullcontext()
    )

    profile_report = None
    try:
        with profile_cm as profile_report:
            return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if profile_report is not None:
            print("--- cProfile report ---", file=sys.stderr)
            print(profile_report.text, file=sys.stderr)
        if collector is not None:
            if trace_out:
                try:
                    collector.export(trace_out)
                    logger.info("trace written to %s", trace_out)
                except OSError as exc:
                    print(f"error: cannot write trace: {exc}", file=sys.stderr)
            elif not trace_chrome:
                print(collector.to_json(), file=sys.stderr)
            if trace_chrome:
                try:
                    obs.write_chrome_trace(collector, trace_chrome)
                    logger.info("chrome trace written to %s", trace_chrome)
                except OSError as exc:
                    print(
                        f"error: cannot write chrome trace: {exc}", file=sys.stderr
                    )
        registry = obs.metrics()
        if isinstance(registry, obs.MetricsRegistry):
            if metrics_out:
                try:
                    registry.export(metrics_out)
                    logger.info("metrics snapshot written to %s", metrics_out)
                except OSError as exc:
                    print(f"error: cannot write metrics: {exc}", file=sys.stderr)
            if metrics_prom:
                try:
                    obs.write_prometheus(registry, metrics_prom)
                    logger.info("prometheus metrics written to %s", metrics_prom)
                except OSError as exc:
                    print(
                        f"error: cannot write prometheus metrics: {exc}",
                        file=sys.stderr,
                    )
        if event_sink is not None:
            event_sink.close()
            logger.info(
                "%d events written to %s", event_sink.written, events_out
            )
        engine = obs.slo_engine()
        if engine is not None:
            for entry in engine.snapshot()["objectives"]:
                breaches = entry.get("breaches", 0)
                if breaches:
                    print(
                        f"slo: objective {entry['objective']['name']!r} "
                        f"breached {breaches} time(s)",
                        file=sys.stderr,
                    )
        obs.disable_slo()
        if ops_server is not None:
            obs.stop_ops_server()
        if flight_dir is not None:
            recorder = obs.flight_recorder()
            if recorder is not None and recorder.dump_paths:
                logger.info(
                    "%d flight recorder dump(s) in %s",
                    len(recorder.dump_paths), flight_dir,
                )
            obs.disable_flight_recorder()
        obs.disable_events()
        obs.disable_tracing()
        obs.disable_metrics()


if __name__ == "__main__":
    sys.exit(main())
