"""Landmark model and spatial index.

A landmark (paper Definition 2) is a stable geographic point independent of
any trajectory — either a POI-cluster centre or a road-network turning
point.  Landmarks carry a significance score ``l.s`` (Sec. IV-B) assigned by
the HITS-like algorithm in :mod:`repro.landmarks.significance`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import GeometryError
from repro.geo import GeoPoint, GridIndex, LocalProjector

LandmarkId = int


class LandmarkKind(Enum):
    """Origin of a landmark: POI cluster centre or road turning point."""

    POI_CLUSTER = "poi_cluster"
    TURNING_POINT = "turning_point"


@dataclass(slots=True)
class Landmark:
    """A named, significance-scored anchor point in the city."""

    landmark_id: LandmarkId
    point: GeoPoint
    name: str
    kind: LandmarkKind
    significance: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.significance <= 1.0:
            raise GeometryError(
                f"landmark significance must lie in [0, 1], got {self.significance}"
            )


class LandmarkIndex:
    """Spatially indexed landmark collection with id and metric lookups."""

    def __init__(self, landmarks: list[Landmark], projector: LocalProjector) -> None:
        self.projector = projector
        self._by_id: dict[LandmarkId, Landmark] = {}
        self._grid: GridIndex[LandmarkId] = GridIndex(projector)
        for landmark in landmarks:
            if landmark.landmark_id in self._by_id:
                raise GeometryError(f"duplicate landmark id {landmark.landmark_id}")
            self._by_id[landmark.landmark_id] = landmark
            self._grid.insert(landmark.point, landmark.landmark_id)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())

    def __contains__(self, landmark_id: LandmarkId) -> bool:
        return landmark_id in self._by_id

    def get(self, landmark_id: LandmarkId) -> Landmark:
        """Landmark by id; raises :class:`GeometryError` if unknown."""
        try:
            return self._by_id[landmark_id]
        except KeyError:
            raise GeometryError(f"unknown landmark id {landmark_id}") from None

    def nearest(
        self, point: GeoPoint, max_radius_m: float = 2_000.0
    ) -> tuple[float, Landmark] | None:
        """Closest landmark within *max_radius_m* of *point*, or ``None``."""
        hit = self._grid.nearest(point, max_radius_m)
        if hit is None:
            return None
        return (hit[0], self._by_id[hit[1]])

    def within(self, point: GeoPoint, radius_m: float) -> list[tuple[float, Landmark]]:
        """All landmarks within *radius_m* of *point*, sorted by distance."""
        hits = self._grid.query_radius(point, radius_m)
        hits.sort(key=lambda pair: pair[0])
        return [(d, self._by_id[lid]) for d, lid in hits]

    def ids(self) -> list[LandmarkId]:
        """All landmark ids."""
        return list(self._by_id)
