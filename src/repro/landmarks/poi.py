"""Synthetic POI dataset.

Stands in for the paper's third-party Beijing POI dataset (~510k points).
POIs are drawn from a mixture of dense activity centres (malls, campuses,
station districts) and a uniform urban background, which is exactly the
structure DBSCAN needs to produce meaningful clusters.  Each POI carries a
category with an *attractiveness* weight that later drives check-in volume
(and therefore landmark significance).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.exceptions import ConfigError
from repro.geo import BoundingBox, GeoPoint, LocalProjector


class POICategory(Enum):
    """POI categories with a base attractiveness used for check-in volume."""

    TRANSIT_STATION = ("Station", 5.0)
    SHOPPING_MALL = ("Mall", 4.0)
    HOTEL = ("Hotel", 3.0)
    PARK = ("Park", 3.0)
    HOSPITAL = ("Hospital", 2.5)
    UNIVERSITY = ("University", 2.5)
    MUSEUM = ("Museum", 2.0)
    RESTAURANT = ("Restaurant", 1.5)
    OFFICE = ("Tower", 1.0)
    COMMUNITY = ("Community", 0.8)

    def __init__(self, label: str, attractiveness: float) -> None:
        self.label = label
        self.attractiveness = attractiveness


@dataclass(frozen=True, slots=True)
class POI:
    """A point of interest."""

    poi_id: int
    point: GeoPoint
    category: POICategory
    name: str


@dataclass(frozen=True, slots=True)
class POIConfig:
    """Parameters of the synthetic POI process."""

    count: int = 3_000
    activity_centers: int = 14
    center_sigma_m: float = 220.0
    background_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError("POI count must be at least 1")
        if self.activity_centers < 1:
            raise ConfigError("need at least one activity centre")
        if self.center_sigma_m <= 0.0:
            raise ConfigError("centre sigma must be positive")
        if not 0.0 <= self.background_fraction <= 1.0:
            raise ConfigError("background_fraction must lie in [0, 1]")


_POI_STEMS = (
    "Daoxiang", "Haidian", "Suzhou", "Zhichun", "Yuyuan", "Shangri",
    "Zhongguan", "Wudao", "Xizhi", "Beitai", "Nanluo", "Dongzhi",
    "Jinrong", "Wangfu", "Qianhai", "Houhai", "Liulichang", "Panjia",
    "Sanli", "Guomao", "Lize", "Fengtai", "Chaoyang", "Xuanwu",
)


def generate_pois(
    config: POIConfig,
    bbox: BoundingBox,
    projector: LocalProjector,
    rng: np.random.Generator,
) -> list[POI]:
    """Sample a synthetic POI dataset inside *bbox*.

    ``1 - background_fraction`` of the POIs concentrate around Gaussian
    activity centres; the rest scatter uniformly.  All POIs are clamped to
    the bounding box so the downstream pipeline never sees out-of-city
    points.
    """
    min_xy = projector.to_xy(GeoPoint(bbox.min_lat, bbox.min_lon))
    max_xy = projector.to_xy(GeoPoint(bbox.max_lat, bbox.max_lon))

    centers = rng.uniform(
        low=(min_xy[0], min_xy[1]), high=(max_xy[0], max_xy[1]),
        size=(config.activity_centers, 2),
    )
    categories = list(POICategory)
    weights = np.array([c.attractiveness for c in categories])
    weights = weights / weights.sum()

    pois: list[POI] = []
    n_background = int(round(config.count * config.background_fraction))
    n_clustered = config.count - n_background
    center_choice = rng.integers(0, config.activity_centers, size=n_clustered)

    def clamp(x: float, lo: float, hi: float) -> float:
        return min(hi, max(lo, x))

    def make_poi(poi_id: int, x: float, y: float) -> POI:
        x = clamp(x, min_xy[0], max_xy[0])
        y = clamp(y, min_xy[1], max_xy[1])
        category = categories[int(rng.choice(len(categories), p=weights))]
        stem = _POI_STEMS[int(rng.integers(0, len(_POI_STEMS)))]
        name = f"{stem} {category.label}"
        return POI(poi_id, projector.to_point(x, y), category, name)

    for i in range(n_clustered):
        cx, cy = centers[center_choice[i]]
        x = float(cx + rng.normal(0.0, config.center_sigma_m))
        y = float(cy + rng.normal(0.0, config.center_sigma_m))
        pois.append(make_poi(i, x, y))
    for i in range(n_background):
        x = float(rng.uniform(min_xy[0], max_xy[0]))
        y = float(rng.uniform(min_xy[1], max_xy[1]))
        pois.append(make_poi(n_clustered + i, x, y))
    return pois
