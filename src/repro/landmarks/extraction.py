"""Landmark dataset construction (paper Sec. VII-A).

The landmark dataset has two parts: *turning points* extracted from the
road network (intersections and sharp geometry bends) and the centroids of
DBSCAN clusters over the raw POI dataset.  Turning points are named after
the roads that meet there; a POI-cluster landmark inherits the name of its
most attractive member POI — this is what makes summaries read
"from the Daoxiang Community to the Haidian Hospital".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigError
from repro.geo import heading_change_deg
from repro.landmarks.dbscan import NOISE, cluster_centroids, dbscan
from repro.landmarks.model import Landmark, LandmarkIndex, LandmarkKind
from repro.landmarks.poi import POI
from repro.roadnet import RoadNetwork


@dataclass(frozen=True, slots=True)
class LandmarkConfig:
    """Parameters of landmark extraction."""

    bend_threshold_deg: float = 30.0
    dbscan_eps_m: float = 120.0
    dbscan_min_pts: int = 5
    #: POI-cluster landmarks closer than this to an existing turning point
    #: are merged into it: the merged landmark keeps the turning point's
    #: position (on the road network, so trips can anchor to it) but takes
    #: the POI's name and kind (so check-ins, trip demand, and summaries
    #: all refer to the same identity — "Haidian Hospital").
    merge_radius_m: float = 160.0

    def __post_init__(self) -> None:
        if not 0.0 < self.bend_threshold_deg <= 180.0:
            raise ConfigError("bend threshold must lie in (0, 180]")
        if self.merge_radius_m < 0.0:
            raise ConfigError("merge radius must be non-negative")


def extract_turning_points(
    network: RoadNetwork, bend_threshold_deg: float = 30.0
) -> list[tuple[int, str]]:
    """Road-network nodes that qualify as turning points.

    A node qualifies when it is a decision point (degree ≥ 3), a dead end
    (degree 1), or a degree-2 geometry bend sharper than
    *bend_threshold_deg*.  Returns ``(node_id, name)`` pairs; the name joins
    the distinct road names meeting at the node.
    """
    out: list[tuple[int, str]] = []
    for node in network.nodes():
        edges = network.incident_edges(node.node_id)
        degree = len(edges)
        qualifies = degree >= 3 or degree == 1
        if degree == 2:
            b0 = network.edge_bearing_deg(edges[0], node.node_id)
            b1 = network.edge_bearing_deg(edges[1], node.node_id)
            # Through-travel heading change: entering along edge 0 and leaving
            # along edge 1 turns by 180 - angle between the outgoing bearings.
            qualifies = 180.0 - heading_change_deg(b0, b1) >= bend_threshold_deg
        if not qualifies:
            continue
        names = sorted({e.name for e in edges})
        if len(names) == 1:
            label = names[0]
        else:
            label = " & ".join(names[:2])
        out.append((node.node_id, label))
    return out


def build_landmarks(
    network: RoadNetwork,
    pois: list[POI],
    config: LandmarkConfig | None = None,
) -> LandmarkIndex:
    """Assemble the landmark dataset from the map and the POI set.

    Mirrors the paper's recipe: turning points from the map, POI-cluster
    centroids from DBSCAN.  Significance scores are zero here; they are
    assigned later by :func:`repro.landmarks.significance.assign_significance`.
    """
    config = config or LandmarkConfig()
    projector = network.projector
    landmarks: list[Landmark] = []
    next_id = 0

    for node_id, name in extract_turning_points(network, config.bend_threshold_deg):
        landmarks.append(
            Landmark(next_id, network.node(node_id).point, name, LandmarkKind.TURNING_POINT)
        )
        next_id += 1

    # Provisional index of turning points for the merge test below.
    provisional = LandmarkIndex(landmarks, projector)

    points = [p.point for p in pois]
    result = dbscan(points, config.dbscan_eps_m, config.dbscan_min_pts, projector)
    centroids = cluster_centroids(points, result, projector)
    for cluster, centroid in enumerate(centroids):
        members = result.members(cluster)
        best = max(members, key=lambda i: pois[i].category.attractiveness)
        name = pois[best].name
        near = provisional.nearest(centroid, max_radius_m=config.merge_radius_m)
        if near is not None:
            # Merge into the nearby turning point: same physical place on
            # the network, but it now *is* the POI for every consumer.
            near[1].name = name
            near[1].kind = LandmarkKind.POI_CLUSTER
            continue
        landmarks.append(Landmark(next_id, centroid, name, LandmarkKind.POI_CLUSTER))
        next_id += 1

    return LandmarkIndex(landmarks, projector)


def noise_ratio(labels: list[int]) -> float:
    """Fraction of DBSCAN input points labelled as noise."""
    if not labels:
        return 0.0
    return sum(1 for label in labels if label == NOISE) / len(labels)
