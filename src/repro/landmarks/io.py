"""JSON serialization of landmark datasets."""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import GeometryError
from repro.geo import GeoPoint, LocalProjector
from repro.landmarks.model import Landmark, LandmarkIndex, LandmarkKind

_FORMAT_VERSION = 1


def landmarks_to_dict(index: LandmarkIndex) -> dict:
    """JSON-compatible representation of a landmark index."""
    return {
        "version": _FORMAT_VERSION,
        "origin": {
            "lat": index.projector.origin.lat,
            "lon": index.projector.origin.lon,
        },
        "landmarks": [
            {
                "id": lm.landmark_id,
                "lat": lm.point.lat,
                "lon": lm.point.lon,
                "name": lm.name,
                "kind": lm.kind.value,
                "significance": lm.significance,
            }
            for lm in index
        ],
    }


def landmarks_from_dict(data: dict) -> LandmarkIndex:
    """Inverse of :func:`landmarks_to_dict`."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise GeometryError(f"unsupported landmark format version: {version}")
    projector = LocalProjector(
        GeoPoint(data["origin"]["lat"], data["origin"]["lon"])
    )
    landmarks = [
        Landmark(
            item["id"],
            GeoPoint(item["lat"], item["lon"]),
            item["name"],
            LandmarkKind(item["kind"]),
            item["significance"],
        )
        for item in data["landmarks"]
    ]
    return LandmarkIndex(landmarks, projector)


def save_landmarks(index: LandmarkIndex, path: str | Path) -> None:
    """Write the landmark dataset to *path* as JSON."""
    Path(path).write_text(json.dumps(landmarks_to_dict(index)), encoding="utf-8")


def load_landmarks(path: str | Path) -> LandmarkIndex:
    """Read a landmark dataset written by :func:`save_landmarks`."""
    return landmarks_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
