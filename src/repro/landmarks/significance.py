"""Landmark significance via a HITS-like algorithm (paper Sec. IV-B).

The paper infers landmark significance from LBSN check-ins and taxi visits
with a HITS-like algorithm (Zheng et al., WWW'09): travellers are
authorities, landmarks are hubs, and visits are the hyperlinks between
them.  A landmark visited by many well-travelled users scores high; the
scores are normalized to [0, 1] and stored on the landmarks as ``l.s``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.exceptions import ConfigError
from repro.landmarks.model import LandmarkId, LandmarkIndex

TravellerId = Hashable


@dataclass(frozen=True, slots=True)
class Visit:
    """One traveller touching one landmark (a check-in or a taxi visit)."""

    traveller: TravellerId
    landmark: LandmarkId


@dataclass(frozen=True, slots=True)
class HITSResult:
    """Converged hub scores per landmark and authority scores per traveller."""

    hub: dict[LandmarkId, float]
    authority: dict[TravellerId, float]
    iterations: int


def hits_significance(
    visits: Iterable[Visit],
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> HITSResult:
    """Run the HITS-like mutual-reinforcement iteration over visits.

    Modelled on the paper's setup: authority(traveller) accumulates the hub
    scores of the landmarks they visited; hub(landmark) accumulates the
    authority of its visitors.  Scores are L2-normalized every round;
    iteration stops when the hub vector moves less than *tolerance*.
    Hub scores are finally rescaled so the maximum is 1.0.
    """
    if max_iterations < 1:
        raise ConfigError("need at least one HITS iteration")

    visit_list = list(visits)
    if not visit_list:
        return HITSResult({}, {}, 0)

    landmark_ids = sorted({v.landmark for v in visit_list})
    traveller_ids = sorted({v.traveller for v in visit_list}, key=repr)
    l_index = {lid: i for i, lid in enumerate(landmark_ids)}
    t_index = {tid: i for i, tid in enumerate(traveller_ids)}

    # Sparse bipartite incidence as parallel index arrays; multiplicity of
    # repeated visits is kept (visiting twice reinforces twice).
    rows = np.array([t_index[v.traveller] for v in visit_list], dtype=np.int64)
    cols = np.array([l_index[v.landmark] for v in visit_list], dtype=np.int64)

    hub = np.ones(len(landmark_ids))
    authority = np.ones(len(traveller_ids))
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_authority = np.bincount(rows, weights=hub[cols], minlength=len(traveller_ids))
        norm = np.linalg.norm(new_authority)
        if norm > 0.0:
            new_authority /= norm
        new_hub = np.bincount(cols, weights=new_authority[rows], minlength=len(landmark_ids))
        norm = np.linalg.norm(new_hub)
        if norm > 0.0:
            new_hub /= norm
        delta = float(np.abs(new_hub - hub).max())
        hub = new_hub
        authority = new_authority
        if delta < tolerance:
            break

    peak = float(hub.max())
    if peak > 0.0:
        hub = hub / peak
    return HITSResult(
        hub={lid: float(hub[i]) for lid, i in l_index.items()},
        authority={tid: float(authority[i]) for tid, i in t_index.items()},
        iterations=iterations,
    )


def assign_significance(
    index: LandmarkIndex,
    visits: Iterable[Visit],
    floor: float = 0.001,
) -> HITSResult:
    """Compute HITS significance and write it onto the landmarks in *index*.

    Raw HITS hub scores follow the principal eigenvector and concentrate
    extremely on the top hub; a monotone square-root rescaling spreads the
    scale without changing the ranking, so downstream consumers (partition
    boundary scores, Fig. 9 deciles) see a usable distribution rather than
    a single spike over a sea of ties.  Landmarks never visited receive the
    small *floor* significance so the partitioner can still break at them
    when nothing better exists.
    """
    if not 0.0 <= floor <= 1.0:
        raise ConfigError("significance floor must lie in [0, 1]")
    result = hits_significance(visits)
    for landmark in index:
        score = result.hub.get(landmark.landmark_id, 0.0)
        landmark.significance = max(floor, math.sqrt(score))
    return result
