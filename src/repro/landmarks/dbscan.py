"""Density-based clustering (DBSCAN), implemented from scratch.

The paper clusters ~510k raw POIs into ~17k clusters with DBSCAN
(Ester et al., KDD'96) and uses the cluster centroids as landmarks.  This
implementation follows the original algorithm with region queries served by
the library's grid index, giving near-linear behaviour on city-scale data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigError
from repro.geo import GeoPoint, GridIndex, LocalProjector

NOISE = -1
_UNVISITED = -2


@dataclass(frozen=True, slots=True)
class DBSCANResult:
    """Labels per input point (``NOISE`` = -1) and the number of clusters."""

    labels: list[int]
    cluster_count: int

    def members(self, cluster: int) -> list[int]:
        """Indexes of the points assigned to *cluster*."""
        return [i for i, label in enumerate(self.labels) if label == cluster]


def dbscan(
    points: Sequence[GeoPoint],
    eps_m: float,
    min_pts: int,
    projector: LocalProjector,
) -> DBSCANResult:
    """Cluster *points* with DBSCAN(eps_m, min_pts).

    A point is a *core* point if at least *min_pts* points (itself included)
    lie within *eps_m*.  Clusters are the transitive closure of core points
    over the eps-neighbourhood relation; border points join the cluster of
    the first core point that reaches them; the rest are labelled ``NOISE``.
    """
    if eps_m <= 0.0:
        raise ConfigError(f"eps must be positive, got {eps_m}")
    if min_pts < 1:
        raise ConfigError(f"min_pts must be at least 1, got {min_pts}")

    n = len(points)
    labels = [_UNVISITED] * n
    if n == 0:
        return DBSCANResult([], 0)

    grid: GridIndex[int] = GridIndex(projector, cell_size_m=max(eps_m, 1.0))
    grid.extend((p, i) for i, p in enumerate(points))

    def region(i: int) -> list[int]:
        return [j for _, j in grid.query_radius(points[i], eps_m)]

    cluster = 0
    for i in range(n):
        if labels[i] != _UNVISITED:
            continue
        neighbors = region(i)
        if len(neighbors) < min_pts:
            labels[i] = NOISE
            continue
        labels[i] = cluster
        # Seed set expansion: classic DBSCAN frontier walk.
        frontier = [j for j in neighbors if j != i]
        k = 0
        while k < len(frontier):
            j = frontier[k]
            k += 1
            if labels[j] == NOISE:
                labels[j] = cluster  # border point reached from a core point
            if labels[j] != _UNVISITED:
                continue
            labels[j] = cluster
            j_neighbors = region(j)
            if len(j_neighbors) >= min_pts:
                frontier.extend(
                    m for m in j_neighbors if labels[m] in (_UNVISITED, NOISE)
                )
        cluster += 1
    return DBSCANResult(labels, cluster)


def cluster_centroids(
    points: Sequence[GeoPoint],
    result: DBSCANResult,
    projector: LocalProjector,
) -> list[GeoPoint]:
    """Geometric centre of every cluster, indexed by cluster label."""
    sums: list[tuple[float, float, int]] = [(0.0, 0.0, 0)] * result.cluster_count
    for point, label in zip(points, result.labels):
        if label == NOISE:
            continue
        x, y = projector.to_xy(point)
        sx, sy, count = sums[label]
        sums[label] = (sx + x, sy + y, count + 1)
    centroids = []
    for sx, sy, count in sums:
        if count == 0:
            raise ConfigError("empty cluster in DBSCAN result")
        centroids.append(projector.to_point(sx / count, sy / count))
    return centroids
