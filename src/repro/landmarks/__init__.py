"""Landmark substrate: POIs, DBSCAN, turning points, HITS significance."""

from repro.landmarks.model import Landmark, LandmarkId, LandmarkIndex, LandmarkKind
from repro.landmarks.poi import POI, POICategory, POIConfig, generate_pois
from repro.landmarks.dbscan import NOISE, DBSCANResult, cluster_centroids, dbscan
from repro.landmarks.extraction import (
    LandmarkConfig,
    build_landmarks,
    extract_turning_points,
    noise_ratio,
)
from repro.landmarks.io import (
    landmarks_from_dict,
    landmarks_to_dict,
    load_landmarks,
    save_landmarks,
)
from repro.landmarks.significance import (
    HITSResult,
    Visit,
    assign_significance,
    hits_significance,
)

__all__ = [
    "Landmark",
    "LandmarkId",
    "LandmarkIndex",
    "LandmarkKind",
    "POI",
    "POICategory",
    "POIConfig",
    "generate_pois",
    "NOISE",
    "DBSCANResult",
    "dbscan",
    "cluster_centroids",
    "LandmarkConfig",
    "build_landmarks",
    "extract_turning_points",
    "noise_ratio",
    "landmarks_to_dict",
    "landmarks_from_dict",
    "save_landmarks",
    "load_landmarks",
    "Visit",
    "HITSResult",
    "hits_significance",
    "assign_significance",
]
